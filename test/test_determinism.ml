(* Determinism regression suite for the parallel experiment runner.

   The contract of Fruitchain_util.Pool + Runs.run_parallel is that worker
   count and scheduling are invisible in results: for every registered
   experiment, the rendered outcome (title, claim, table, notes — the exact
   bytes bench/main.exe prints) must be identical between --jobs 1 (the
   fully sequential path, no domains spawned) and --jobs 4, and stable
   across repeated runs under the same master seed. Experiments that do not
   fan out units yet pass trivially; they stay in the suite so that any
   future conversion is born covered. *)

module Exp = Fruitchain_experiments.Exp
module Registry = Fruitchain_experiments.Registry
module Pool = Fruitchain_util.Pool
module Metrics = Fruitchain_obs.Metrics
module Tracer = Fruitchain_obs.Tracer
module Scope = Fruitchain_obs.Scope

let render ~jobs (module E : Exp.EXPERIMENT) =
  Pool.set_default_jobs jobs;
  let outcome = E.run ~scale:Exp.Quick () in
  Format.asprintf "%a" Exp.print outcome

(* Run an experiment under an ambient fruitscope scope and return the bytes
   of the golden artifacts: the canonical metric dump and the merged trace
   stream. These are exactly what --metrics/--trace write from the CLI, so
   byte-equality here is byte-equality of the files. *)
let observe ~jobs (module E : Exp.EXPERIMENT) =
  Pool.set_default_jobs jobs;
  let registry = Metrics.create () in
  let tracer = Tracer.buffer () in
  Pool.set_scope (Scope.make ~metrics:registry ~tracer ());
  Fun.protect
    ~finally:(fun () -> Pool.set_scope Scope.null)
    (fun () -> ignore (E.run ~scale:Exp.Quick ()));
  (Metrics.dump registry, String.concat "\n" (Tracer.lines tracer))

(* The experiments that actually emit parallel work units (the sweeps);
   these get the extra repeated-run check at jobs=4, where scheduling noise
   would show up if any unit drew from shared state. *)
let parallel_ids =
  [ "E01"; "E02"; "E03"; "E07"; "E16"; "E17"; "E18"; "E19"; "E20"; "E21"; "E22" ]

let test_jobs_invariance (module E : Exp.EXPERIMENT) () =
  let sequential = render ~jobs:1 (module E) in
  let parallel = render ~jobs:4 (module E) in
  Alcotest.(check string)
    (E.id ^ ": --jobs 1 and --jobs 4 render byte-identically")
    sequential parallel

let test_repeat_stability (module E : Exp.EXPERIMENT) () =
  let first = render ~jobs:4 (module E) in
  let second = render ~jobs:4 (module E) in
  Alcotest.(check string)
    (E.id ^ ": two jobs=4 runs under the same master seed are identical")
    first second

(* Fruitscope golden artifacts: worker count must also be invisible in the
   metric dump and in the merged trace stream (children merge in unit-index
   order). A subset keeps the suite's runtime reasonable; these cover a
   Nakamoto sweep, a FruitChain sweep, a parameter sweep, and the
   partition experiment whose traces now carry lifecycle spans. *)
let scoped_ids = [ "E01"; "E02"; "E17"; "E19"; "E22" ]

let test_scope_invariance (module E : Exp.EXPERIMENT) () =
  let seq_metrics, seq_trace = observe ~jobs:1 (module E) in
  let par_metrics, par_trace = observe ~jobs:4 (module E) in
  Alcotest.(check string)
    (E.id ^ ": metric dumps at --jobs 1 and --jobs 4 are byte-identical")
    seq_metrics par_metrics;
  Alcotest.(check string)
    (E.id ^ ": traces at --jobs 1 and --jobs 4 are byte-identical")
    seq_trace par_trace;
  Alcotest.(check bool) (E.id ^ ": the scoped run actually recorded metrics") true
    (not (String.equal seq_metrics {|{"counters":{},"gauges":{},"histograms":{}}|}))

(* Scenario runs (lib/scenario) carry the same contract as experiments: the
   rendered trial table, the golden metric dump, and the merged trace of a
   scenario must be byte-identical at any worker count. This is the
   in-suite version of the CLI acceptance check
   [scenario run ... --jobs 4 == --jobs 1]. *)
module Scenario = Fruitchain_scenario.Scenario
module Loader = Fruitchain_scenario.Loader
module Driver = Fruitchain_scenario.Driver

let scenario_fixture () =
  match Loader.load "fixtures/scenarios/partition_small.json" with
  | Ok s -> s
  | Error _ -> Alcotest.fail "fixture scenario must load"

let observe_scenario ~jobs s =
  Pool.set_default_jobs jobs;
  let registry = Metrics.create () in
  let tracer = Tracer.buffer () in
  Pool.set_scope (Scope.make ~metrics:registry ~tracer ());
  let trials =
    Fun.protect
      ~finally:(fun () -> Pool.set_scope Scope.null)
      (fun () -> Driver.run_trials s)
  in
  ( Fruitchain_util.Table.to_string (Driver.table s trials),
    Metrics.dump registry,
    String.concat "\n" (Tracer.lines tracer) )

let test_scenario_jobs_invariance () =
  let s = scenario_fixture () in
  let seq_table, seq_metrics, seq_trace = observe_scenario ~jobs:1 s in
  let par_table, par_metrics, par_trace = observe_scenario ~jobs:4 s in
  Alcotest.(check string) "scenario tables at --jobs 1 and --jobs 4" seq_table par_table;
  Alcotest.(check string) "scenario metric dumps at --jobs 1 and --jobs 4"
    seq_metrics par_metrics;
  Alcotest.(check string) "scenario traces at --jobs 1 and --jobs 4" seq_trace par_trace;
  Alcotest.(check bool) "the run recorded scenario metrics" true
    (not (String.equal seq_metrics {|{"counters":{},"gauges":{},"histograms":{}}|}))

let test_scenario_repeat_stability () =
  let s = scenario_fixture () in
  let first = observe_scenario ~jobs:4 s in
  let second = observe_scenario ~jobs:4 s in
  Alcotest.(check bool) "two jobs=4 scenario runs are identical" true (first = second)

(* --- Hot-path soak ----------------------------------------------------

   The arena store / deferred oracle / ring network rewrites must hold the
   determinism contract well past the quick-scale horizon: a 10^5-round
   E01-shaped sweep (Nakamoto, selfish + honest-coalition units) must
   render and observe byte-identically at --jobs 1 and --jobs 4. Shares
   are printed at full float precision, which is stricter than the
   2-decimal experiment table. *)

module Runs = Fruitchain_experiments.Runs
module Sim_config = Fruitchain_sim.Config
module Sim_trace = Fruitchain_sim.Trace
module Quality = Fruitchain_metrics.Quality

let soak_rounds = 100_000

let soak_observe ~jobs =
  Pool.set_default_jobs jobs;
  let registry = Metrics.create () in
  let tracer = Tracer.buffer () in
  Pool.set_scope (Scope.make ~metrics:registry ~tracer ());
  let params = Exp.default_params () in
  let specs = [ (0.25, None); (0.25, Some 0.5); (0.45, None); (0.45, Some 0.5) ] in
  let units =
    List.map
      (fun (rho, gamma) ~seed ->
        let strategy =
          match gamma with
          | None -> Runs.honest_coalition
          | Some gamma -> Runs.selfish ~gamma
        in
        let config =
          Runs.config ~protocol:Sim_config.Nakamoto ~rho ~rounds:soak_rounds ~params ~seed ()
        in
        Quality.adversarial_fraction
          (Quality.block_shares (Sim_trace.honest_final_chain (Runs.run config ~strategy ()))))
      specs
  in
  let shares =
    Fun.protect
      ~finally:(fun () -> Pool.set_scope Scope.null)
      (fun () -> Runs.run_parallel ~master:1L units)
  in
  let table = String.concat "\n" (List.map (Printf.sprintf "%.17g") shares) in
  (table, Metrics.dump registry)

let test_soak_jobs_invariance () =
  let seq_table, seq_metrics = soak_observe ~jobs:1 in
  let par_table, par_metrics = soak_observe ~jobs:4 in
  Alcotest.(check string) "soak shares at --jobs 1 and --jobs 4" seq_table par_table;
  Alcotest.(check string) "soak metric dumps at --jobs 1 and --jobs 4" seq_metrics par_metrics

(* Allocation regression tripwire for the round loop. The rewrites hold
   steady-state allocation to ~4.2 KB/round (Nakamoto) and ~11.1 KB/round
   (FruitChain) at quick-scale parameters — dominated by message delivery
   and trace events, with mining queries allocation-free on the miss path.
   Runs are seeded and sequential, so the measurement is deterministic;
   the 1.5x headroom covers code drift, not noise. Reintroducing per-query
   boxing (the pre-rewrite oracle allocated ~200 B per query per party)
   blows these bounds. *)
let alloc_per_round protocol =
  Pool.set_default_jobs 1;
  let params = Exp.default_params () in
  let config = Runs.config ~protocol ~rho:0.25 ~rounds:20_000 ~params ~seed:7L () in
  let before = Gc.allocated_bytes () in
  ignore (Runs.run config ~strategy:Runs.honest_coalition ());
  (Gc.allocated_bytes () -. before) /. 20_000.

let test_round_loop_allocation () =
  let nakamoto = alloc_per_round Sim_config.Nakamoto in
  Alcotest.(check bool)
    (Printf.sprintf "nakamoto round loop: %.0f B/round (bound 6300)" nakamoto)
    true (nakamoto < 6300.);
  let fruitchain = alloc_per_round Sim_config.Fruitchain in
  Alcotest.(check bool)
    (Printf.sprintf "fruitchain round loop: %.0f B/round (bound 16600)" fruitchain)
    true (fruitchain < 16600.)

let () =
  Alcotest.run "determinism"
    [
      ( "jobs invariance (quick scale)",
        List.map
          (fun (module E : Exp.EXPERIMENT) ->
            Alcotest.test_case E.id `Slow (test_jobs_invariance (module E)))
          Registry.all );
      ( "repeat stability (parallel sweeps)",
        List.filter_map
          (fun id ->
            Option.map
              (fun (module E : Exp.EXPERIMENT) ->
                Alcotest.test_case E.id `Slow (test_repeat_stability (module E)))
              (Registry.find id))
          parallel_ids );
      ( "fruitscope invariance (metrics + trace)",
        List.filter_map
          (fun id ->
            Option.map
              (fun (module E : Exp.EXPERIMENT) ->
                Alcotest.test_case E.id `Slow (test_scope_invariance (module E)))
              (Registry.find id))
          scoped_ids );
      ( "scenario invariance (fruitstorm)",
        [
          Alcotest.test_case "partition_small jobs 1 == 4" `Slow
            test_scenario_jobs_invariance;
          Alcotest.test_case "partition_small repeat stability" `Slow
            test_scenario_repeat_stability;
        ] );
      ( "hot-path soak (PR 5)",
        [
          Alcotest.test_case "100k-round sweep jobs 1 == 4" `Slow test_soak_jobs_invariance;
          Alcotest.test_case "round-loop allocation bound" `Slow test_round_loop_allocation;
        ] );
    ]
