(* Determinism regression suite for the parallel experiment runner.

   The contract of Fruitchain_util.Pool + Runs.run_parallel is that worker
   count and scheduling are invisible in results: for every registered
   experiment, the rendered outcome (title, claim, table, notes — the exact
   bytes bench/main.exe prints) must be identical between --jobs 1 (the
   fully sequential path, no domains spawned) and --jobs 4, and stable
   across repeated runs under the same master seed. Experiments that do not
   fan out units yet pass trivially; they stay in the suite so that any
   future conversion is born covered. *)

module Exp = Fruitchain_experiments.Exp
module Registry = Fruitchain_experiments.Registry
module Pool = Fruitchain_util.Pool
module Metrics = Fruitchain_obs.Metrics
module Tracer = Fruitchain_obs.Tracer
module Scope = Fruitchain_obs.Scope

let render ~jobs (module E : Exp.EXPERIMENT) =
  Pool.set_default_jobs jobs;
  let outcome = E.run ~scale:Exp.Quick () in
  Format.asprintf "%a" Exp.print outcome

(* Run an experiment under an ambient fruitscope scope and return the bytes
   of the golden artifacts: the canonical metric dump and the merged trace
   stream. These are exactly what --metrics/--trace write from the CLI, so
   byte-equality here is byte-equality of the files. *)
let observe ~jobs (module E : Exp.EXPERIMENT) =
  Pool.set_default_jobs jobs;
  let registry = Metrics.create () in
  let tracer = Tracer.buffer () in
  Pool.set_scope (Scope.make ~metrics:registry ~tracer ());
  Fun.protect
    ~finally:(fun () -> Pool.set_scope Scope.null)
    (fun () -> ignore (E.run ~scale:Exp.Quick ()));
  (Metrics.dump registry, String.concat "\n" (Tracer.lines tracer))

(* The experiments that actually emit parallel work units (the sweeps);
   these get the extra repeated-run check at jobs=4, where scheduling noise
   would show up if any unit drew from shared state. *)
let parallel_ids = [ "E01"; "E02"; "E03"; "E07"; "E16"; "E17"; "E18" ]

let test_jobs_invariance (module E : Exp.EXPERIMENT) () =
  let sequential = render ~jobs:1 (module E) in
  let parallel = render ~jobs:4 (module E) in
  Alcotest.(check string)
    (E.id ^ ": --jobs 1 and --jobs 4 render byte-identically")
    sequential parallel

let test_repeat_stability (module E : Exp.EXPERIMENT) () =
  let first = render ~jobs:4 (module E) in
  let second = render ~jobs:4 (module E) in
  Alcotest.(check string)
    (E.id ^ ": two jobs=4 runs under the same master seed are identical")
    first second

(* Fruitscope golden artifacts: worker count must also be invisible in the
   metric dump and in the merged trace stream (children merge in unit-index
   order). A subset keeps the suite's runtime reasonable; these three cover
   a Nakamoto sweep, a FruitChain sweep, and a parameter sweep. *)
let scoped_ids = [ "E01"; "E02"; "E17" ]

let test_scope_invariance (module E : Exp.EXPERIMENT) () =
  let seq_metrics, seq_trace = observe ~jobs:1 (module E) in
  let par_metrics, par_trace = observe ~jobs:4 (module E) in
  Alcotest.(check string)
    (E.id ^ ": metric dumps at --jobs 1 and --jobs 4 are byte-identical")
    seq_metrics par_metrics;
  Alcotest.(check string)
    (E.id ^ ": traces at --jobs 1 and --jobs 4 are byte-identical")
    seq_trace par_trace;
  Alcotest.(check bool) (E.id ^ ": the scoped run actually recorded metrics") true
    (not (String.equal seq_metrics {|{"counters":{},"gauges":{},"histograms":{}}|}))

let () =
  Alcotest.run "determinism"
    [
      ( "jobs invariance (quick scale)",
        List.map
          (fun (module E : Exp.EXPERIMENT) ->
            Alcotest.test_case E.id `Slow (test_jobs_invariance (module E)))
          Registry.all );
      ( "repeat stability (parallel sweeps)",
        List.filter_map
          (fun id ->
            Option.map
              (fun (module E : Exp.EXPERIMENT) ->
                Alcotest.test_case E.id `Slow (test_repeat_stability (module E)))
              (Registry.find id))
          parallel_ids );
      ( "fruitscope invariance (metrics + trace)",
        List.filter_map
          (fun id ->
            Option.map
              (fun (module E : Exp.EXPERIMENT) ->
                Alcotest.test_case E.id `Slow (test_scope_invariance (module E)))
              (Registry.find id))
          scoped_ids );
    ]
