(* Statistical-equivalence harness for the sparse simulation plane.

   The sparse engine (lib/sim/sparse.ml) replaces the exact per-party
   per-query round loop with aggregate win sampling: Binomial(Q, p) wins
   per round, geometric skip of empty rounds, alias-table attribution. It
   cannot be draw-for-draw identical to the exact plane — the whole point
   is to consume O(wins) randomness instead of O(n·rounds) — so this suite
   holds the two planes to the same *marginals* at fixed seeds instead:

   - closed-form checks: each engine's total block/fruit counts sit within
     a few sigma of the Binomial(n·rounds, p) law both implement;
   - differential checks: per-party win-count vectors from the two engines
     agree under chi-square and Kolmogorov-Smirnov two-sample tests, and
     headline table columns (adversarial share) agree within tolerance;
   - accounting: [oracle.queries] is pinned to the same effective-query
     number (n·rounds) on both engines, in the trace and in the golden
     metric dump — the sparse plane reports simulated attempts, not RNG
     draws;
   - determinism: capping the skip-ahead ([max_skip:1], i.e. visiting
     every round) is byte-invisible, because skipped rounds consume no
     randomness and mutate no state.

   Thresholds are 5-6 sigma at fixed seeds: the tests are deterministic,
   so they either pass forever or catch a real change in the sampling
   law. *)

module Config = Fruitchain_sim.Config
module Engine = Fruitchain_sim.Engine
module Sparse = Fruitchain_sim.Sparse
module Trace = Fruitchain_sim.Trace
module Exp = Fruitchain_experiments.Exp
module Runs = Fruitchain_experiments.Runs
module Hash = Fruitchain_crypto.Hash
module Metrics = Fruitchain_obs.Metrics
module Scope = Fruitchain_obs.Scope

(* --- Shared configuration --------------------------------------------- *)

let p = 0.002
let fruit_ratio = 10.0 (* pf = 0.02 *)
let pf = p *. fruit_ratio

let config ?(engine = Config.Exact) ?(n = 40) ?(rho = 0.25) ?(rounds = 4_000)
    ?(seed = 1L) () =
  Config.make ~protocol:Config.Fruitchain ~engine ~n ~rho ~delta:2 ~rounds ~seed
    ~params:(Exp.default_params ~q:fruit_ratio ~p ()) ()

let run ?scope config =
  Engine.run ~config ~strategy:Runs.honest_coalition ?scope ()

type tally = {
  blocks : int;
  fruits : int;
  adv_fruits : int;
  honest_fruit_counts : int array; (* indexed by party id; corrupt stay 0 *)
}

let tally config trace =
  let blocks = ref 0 and fruits = ref 0 and adv_fruits = ref 0 in
  let counts = Array.make config.Config.n 0 in
  Trace.iter_events trace ~f:(fun (e : Trace.event) ->
      match e.kind with
      | `Block -> incr blocks
      | `Fruit ->
          incr fruits;
          if e.honest then counts.(e.miner) <- counts.(e.miner) + 1
          else incr adv_fruits);
  { blocks = !blocks; fruits = !fruits; adv_fruits = !adv_fruits; honest_fruit_counts = counts }

let honest_counts config t =
  List.map
    (fun i -> t.honest_fruit_counts.(i))
    (List.init (config.Config.n - Config.corrupt_count config) Fun.id)

(* --- Closed-form marginals --------------------------------------------- *)

(* Total wins of either kind are Binomial(n·rounds, hardness) on both
   planes: exact mines one query per party per round, sparse draws the
   same law in aggregate. Check the observed count sits within 5 sigma. *)
let check_binomial_total name ~queries ~hardness observed =
  let mean = float_of_int queries *. hardness in
  let sigma = Float.sqrt (mean *. (1.0 -. hardness)) in
  let z = Float.abs (float_of_int observed -. mean) /. sigma in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d within 5 sigma of %.1f (z=%.2f)" name observed mean z)
    true (z < 5.0)

let test_closed_form engine () =
  let cfg = config ~engine () in
  let t = tally cfg (run cfg) in
  let queries = cfg.Config.n * cfg.Config.rounds in
  check_binomial_total "fruit total" ~queries ~hardness:pf t.fruits;
  check_binomial_total "block total" ~queries ~hardness:p t.blocks;
  (* The adversary controls floor(rho n) of n uniform queries, so its
     fruit share is Binomial(fruits, q/n)/fruits. *)
  let share = float_of_int (Config.corrupt_count cfg) /. float_of_int cfg.Config.n in
  let sigma = Float.sqrt (share *. (1.0 -. share) /. float_of_int t.fruits) in
  let observed = float_of_int t.adv_fruits /. float_of_int t.fruits in
  Alcotest.(check bool)
    (Printf.sprintf "adv share %.4f within 5 sigma of %.4f" observed share)
    true
    (Float.abs (observed -. share) < 5.0 *. sigma)

(* --- Exact vs sparse two-sample tests ---------------------------------- *)

(* Pearson two-sample statistic over matched per-party counts:
   sum (a_i - b_i)^2 / (a_i + b_i) ~ chi-square(k - 1) under the shared
   uniform-multinomial law. Accept within 5 sd of the chi-square mean. *)
let chi_square_two_sample a b =
  let stat = ref 0.0 and k = ref 0 in
  List.iter2
    (fun ai bi ->
      let s = ai + bi in
      if s > 0 then begin
        incr k;
        let d = float_of_int (ai - bi) in
        stat := !stat +. (d *. d /. float_of_int s)
      end)
    a b;
  (!stat, !k - 1)

(* Two-sample Kolmogorov-Smirnov distance between empirical CDFs of two
   integer samples (here: the distribution of per-party counts). *)
let ks_two_sample a b =
  let a = List.sort compare a and b = List.sort compare b in
  let na = float_of_int (List.length a) and nb = float_of_int (List.length b) in
  let rec go a b fa fb d =
    match (a, b) with
    | [], [] -> d
    | x :: _, y :: _ when x < y -> step_a a b fa fb d
    | x :: _, y :: _ when y < x -> step_b a b fa fb d
    | _ :: _, _ :: _ -> step_a a b fa fb d
    | _ :: _, [] -> step_a a b fa fb d
    | [], _ :: _ -> step_b a b fa fb d
  and step_a a b fa fb d =
    match a with
    | x :: rest ->
        let fa = fa +. (1.0 /. na) in
        (* Consume the whole tie group on this side before measuring. *)
        (match rest with
        | y :: _ when y = x -> go rest b fa fb d
        | _ -> go rest b fa fb (Float.max d (Float.abs (fa -. fb))))
    | [] -> d
  and step_b a b fa fb d =
    match b with
    | y :: rest ->
        let fb = fb +. (1.0 /. nb) in
        (match rest with
        | x :: _ when x = y -> go a rest fa fb d
        | _ -> go a rest fa fb (Float.max d (Float.abs (fa -. fb))))
    | [] -> d
  in
  go a b 0.0 0.0 0.0

let test_differential_chi_square () =
  let exact_cfg = config ~engine:Config.Exact () in
  let sparse_cfg = config ~engine:Config.Sparse () in
  let a = honest_counts exact_cfg (tally exact_cfg (run exact_cfg)) in
  let b = honest_counts sparse_cfg (tally sparse_cfg (run sparse_cfg)) in
  let stat, dof = chi_square_two_sample a b in
  let mean = float_of_int dof and sd = Float.sqrt (2.0 *. float_of_int dof) in
  Alcotest.(check bool)
    (Printf.sprintf "chi2=%.1f within 5 sd of chi-square(%d)" stat dof)
    true
    (Float.abs (stat -. mean) < 5.0 *. sd)

let test_differential_ks () =
  let exact_cfg = config ~engine:Config.Exact () in
  let sparse_cfg = config ~engine:Config.Sparse () in
  let a = honest_counts exact_cfg (tally exact_cfg (run exact_cfg)) in
  let b = honest_counts sparse_cfg (tally sparse_cfg (run sparse_cfg)) in
  let d = ks_two_sample a b in
  let na = float_of_int (List.length a) and nb = float_of_int (List.length b) in
  (* c(alpha = 0.001) = 1.95; ties only make the test more conservative. *)
  let threshold = 1.95 *. Float.sqrt ((na +. nb) /. (na *. nb)) in
  Alcotest.(check bool)
    (Printf.sprintf "KS distance %.3f below %.3f" d threshold)
    true (d < threshold)

let test_differential_table_columns () =
  (* The headline experiment columns must agree between engines: block and
     fruit totals within relative tolerance, adversarial share within
     absolute tolerance. These are the E22-style table cells. *)
  let exact_cfg = config ~engine:Config.Exact () in
  let sparse_cfg = config ~engine:Config.Sparse () in
  let a = tally exact_cfg (run exact_cfg) in
  let b = tally sparse_cfg (run sparse_cfg) in
  let rel x y = Float.abs (float_of_int x -. float_of_int y) /. float_of_int (max x y) in
  Alcotest.(check bool)
    (Printf.sprintf "fruit totals %d vs %d within 10%%" a.fruits b.fruits)
    true
    (rel a.fruits b.fruits < 0.10);
  Alcotest.(check bool)
    (Printf.sprintf "block totals %d vs %d within 25%%" a.blocks b.blocks)
    true
    (rel a.blocks b.blocks < 0.25);
  let share t = float_of_int t.adv_fruits /. float_of_int t.fruits in
  Alcotest.(check bool)
    (Printf.sprintf "adv shares %.4f vs %.4f within 0.04" (share a) (share b))
    true
    (Float.abs (share a -. share b) < 0.04)

(* --- Effective query accounting ---------------------------------------- *)

let test_query_parity () =
  (* Golden accounting pin: both engines must report exactly n·rounds
     effective oracle queries — the exact plane counts real attempts, the
     sparse plane charges the simulated budget, never its own RNG draws.
     Pinned in the trace and in the scoped golden metric dump. *)
  let expected = 40 * 4_000 in
  let observe engine =
    let metrics = Metrics.create () in
    let cfg = config ~engine () in
    let trace = run ~scope:(Scope.make ~metrics ()) cfg in
    (Trace.oracle_queries trace, Metrics.get_counter metrics "oracle.queries")
  in
  let exact_trace, exact_dump = observe Config.Exact in
  let sparse_trace, sparse_dump = observe Config.Sparse in
  Alcotest.(check int) "exact trace queries" expected exact_trace;
  Alcotest.(check int) "sparse trace queries" expected sparse_trace;
  Alcotest.(check (option int)) "exact dump queries" (Some expected) exact_dump;
  Alcotest.(check (option int)) "sparse dump queries" (Some expected) sparse_dump

(* --- Skip-ahead determinism -------------------------------------------- *)

let event_key (e : Trace.event) =
  Printf.sprintf "%d:%d:%b:%s:%s" e.round e.miner e.honest
    (match e.kind with `Block -> "B" | `Fruit -> "F")
    (Hash.to_hex e.hash)

(* [sim.rounds_visited] is the one counter that legitimately depends on the
   skip cap — it diagnoses the skipping itself. Scrub it before comparing
   dumps; everything else must be byte-identical. *)
let scrub_visited dump =
  let key = {|"sim.rounds_visited":|} in
  let rec find i =
    if i + String.length key > String.length dump then None
    else if String.equal (String.sub dump i (String.length key)) key then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> dump
  | Some start ->
      let stop = ref (start + String.length key) in
      while !stop < String.length dump && dump.[!stop] <> ',' && dump.[!stop] <> '}' do
        incr stop
      done;
      String.sub dump 0 (start + String.length key) ^ "_"
      ^ String.sub dump !stop (String.length dump - !stop)

let sparse_artifacts ?max_skip cfg =
  let metrics = Metrics.create () in
  let trace = Sparse.run ~config:cfg ?max_skip ~scope:(Scope.make ~metrics ()) () in
  let events = List.map event_key (Trace.events trace) in
  let finals = Array.to_list (Array.map Hash.to_hex (Trace.final_heads trace)) in
  let heights =
    List.map
      (fun (r, hs) -> Printf.sprintf "%d:%s" r (String.concat "," (Array.to_list (Array.map string_of_int hs))))
      (Trace.height_snapshots trace)
  in
  let visited = Option.value ~default:0 (Metrics.get_counter metrics "sim.rounds_visited") in
  (events, finals, heights, scrub_visited (Metrics.dump metrics), visited)

let check_skip_invariance cfg =
  let e1, f1, h1, m1, v1 = sparse_artifacts ~max_skip:1 cfg in
  let e2, f2, h2, m2, v2 = sparse_artifacts cfg in
  Alcotest.(check (list string)) "events byte-identical" e1 e2;
  Alcotest.(check (list string)) "final heads byte-identical" f1 f2;
  Alcotest.(check (list string)) "height snapshots byte-identical" h1 h2;
  Alcotest.(check string) "metric dumps byte-identical (modulo visit diagnostic)" m1 m2;
  Alcotest.(check int) "max_skip:1 visits every round" cfg.Config.rounds v1;
  Alcotest.(check bool) "unbounded skip visits no more rounds" true (v2 <= v1)

let test_max_skip_invisible () =
  check_skip_invariance (config ~engine:Config.Sparse ())

(* --- QCheck: the laws hold across the configuration space -------------- *)

let qcheck_tests =
  let open QCheck in
  [
    (* (n, rho, fruit_ratio) drawn from the space the experiments sweep;
       both engines run at a derived seed and their totals must each match
       the shared Binomial marginal at 6 sigma, with adversarial shares
       matching floor(rho n)/n. *)
    Test.make ~name:"both engines match the Binomial(n*rounds, pf) marginal" ~count:8
      (triple (int_bound 40) (int_bound 2) (int_bound 1000))
      (fun (n, rho_i, seed) ->
        let n = 5 + n in
        let rho = 0.2 *. float_of_int rho_i in
        let rounds = 1_500 in
        let run_tally engine =
          let cfg = config ~engine ~n ~rho ~rounds ~seed:(Int64.of_int (seed + 1)) () in
          tally cfg (run cfg)
        in
        let within t =
          let mean = float_of_int (n * rounds) *. pf in
          let sigma = Float.sqrt (mean *. (1.0 -. pf)) in
          Float.abs (float_of_int t.fruits -. mean) < 6.0 *. sigma
        in
        let share_ok t =
          let share = float_of_int (int_of_float (rho *. float_of_int n)) /. float_of_int n in
          if t.fruits = 0 then true
          else
            let sigma = Float.sqrt (Float.max 1e-9 (share *. (1.0 -. share)) /. float_of_int t.fruits) in
            Float.abs ((float_of_int t.adv_fruits /. float_of_int t.fruits) -. share)
            < (6.0 *. sigma) +. 1e-9
        in
        let a = run_tally Config.Exact and b = run_tally Config.Sparse in
        within a && within b && share_ok a && share_ok b);
    Test.make ~name:"max_skip cap is byte-invisible across seeds" ~count:12
      (int_bound 1000)
      (fun seed ->
        let cfg =
          config ~engine:Config.Sparse ~n:12 ~rounds:800 ~seed:(Int64.of_int (seed + 1)) ()
        in
        let e1, f1, h1, m1, _ = sparse_artifacts ~max_skip:1 cfg in
        let e2, f2, h2, m2, _ = sparse_artifacts cfg in
        e1 = e2 && f1 = f2 && h1 = h2 && String.equal m1 m2);
  ]

let () =
  Alcotest.run "sparse-differential"
    [
      ( "closed-form",
        [
          Alcotest.test_case "exact engine marginals" `Quick (test_closed_form Config.Exact);
          Alcotest.test_case "sparse engine marginals" `Quick (test_closed_form Config.Sparse);
        ] );
      ( "differential",
        [
          Alcotest.test_case "per-party counts chi-square" `Quick test_differential_chi_square;
          Alcotest.test_case "per-party counts KS" `Quick test_differential_ks;
          Alcotest.test_case "table columns agree" `Quick test_differential_table_columns;
          Alcotest.test_case "oracle.queries parity" `Quick test_query_parity;
        ] );
      ( "determinism",
        [ Alcotest.test_case "max_skip:1 is invisible" `Quick test_max_skip_invisible ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
