(* Tests for Fruitchain_util: rng, sampling, stats, hex, table. *)

module Rng = Fruitchain_util.Rng
module Sampling = Fruitchain_util.Sampling
module Stats = Fruitchain_util.Stats
module Hex = Fruitchain_util.Hex
module Table = Fruitchain_util.Table
module Alias = Fruitchain_util.Alias

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng ------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.of_seed 42L and b = Rng.of_seed 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.of_seed 1L and b = Rng.of_seed 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check int) "different seeds diverge" 0 !same

let test_rng_split_independent () =
  let g = Rng.of_seed 7L in
  let child = Rng.split g in
  let xs = List.init 32 (fun _ -> Rng.bits64 g) in
  let ys = List.init 32 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_copy () =
  let g = Rng.of_seed 9L in
  ignore (Rng.bits64 g);
  let c = Rng.copy g in
  Alcotest.(check int64) "copy resumes identically" (Rng.bits64 g) (Rng.bits64 c)

let test_rng_float_range () =
  let g = Rng.of_seed 3L in
  for _ = 1 to 10_000 do
    let x = Rng.float g in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_float_mean () =
  let g = Rng.of_seed 4L in
  let s = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add s (Rng.float g)
  done;
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (Stats.mean s -. 0.5) < 0.01)

let test_rng_int_bounds () =
  let g = Rng.of_seed 5L in
  for _ = 1 to 10_000 do
    let x = Rng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "zero bound rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0))

let test_rng_int_uniform () =
  let g = Rng.of_seed 6L in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int g 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "each bucket near n/10" true
        (Float.abs (float_of_int c -. 10_000.0) < 500.0))
    counts

let test_bernoulli_extremes () =
  let g = Rng.of_seed 8L in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli g 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli g 1.0);
  Alcotest.(check bool) "p<0 never" false (Rng.bernoulli g (-0.5));
  Alcotest.(check bool) "p>1 always" true (Rng.bernoulli g 1.5)

let test_bernoulli_rate () =
  let g = Rng.of_seed 10L in
  let hits = ref 0 in
  let n = 200_000 in
  for _ = 1 to n do
    if Rng.bernoulli g 0.05 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.05" true (Float.abs (rate -. 0.05) < 0.003)

(* --- Sampling -------------------------------------------------------- *)

let test_geometric_mean () =
  let g = Rng.of_seed 11L in
  let s = Stats.create () in
  let p = 0.2 in
  for _ = 1 to 50_000 do
    Stats.add s (float_of_int (Sampling.geometric g p))
  done;
  (* mean of failures-before-success = (1-p)/p = 4 *)
  Alcotest.(check bool) "mean near 4" true (Float.abs (Stats.mean s -. 4.0) < 0.15)

let test_geometric_p1 () =
  let g = Rng.of_seed 12L in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 is 0" 0 (Sampling.geometric g 1.0)
  done

let test_geometric_invalid () =
  let g = Rng.of_seed 13L in
  Alcotest.check_raises "p=0 rejected"
    (Invalid_argument "Sampling.geometric: need 0 < p <= 1") (fun () ->
      ignore (Sampling.geometric g 0.0))

let test_binomial_edges () =
  let g = Rng.of_seed 14L in
  Alcotest.(check int) "p=0" 0 (Sampling.binomial g 100 0.0);
  Alcotest.(check int) "p=1" 100 (Sampling.binomial g 100 1.0);
  Alcotest.(check int) "n=0" 0 (Sampling.binomial g 0 0.5)

let test_binomial_mean_small () =
  let g = Rng.of_seed 15L in
  let s = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add s (float_of_int (Sampling.binomial g 20 0.3))
  done;
  Alcotest.(check bool) "mean near 6" true (Float.abs (Stats.mean s -. 6.0) < 0.1)

let test_binomial_mean_large () =
  let g = Rng.of_seed 16L in
  let s = Stats.create () in
  for _ = 1 to 5_000 do
    Stats.add s (float_of_int (Sampling.binomial g 10_000 0.5))
  done;
  Alcotest.(check bool) "mean near 5000" true (Float.abs (Stats.mean s -. 5000.0) < 5.0)

let test_binomial_range () =
  let g = Rng.of_seed 17L in
  for _ = 1 to 1_000 do
    let x = Sampling.binomial g 50 0.5 in
    Alcotest.(check bool) "within [0,50]" true (x >= 0 && x <= 50)
  done

let test_poisson_mean () =
  let g = Rng.of_seed 18L in
  let s = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add s (float_of_int (Sampling.poisson g 3.5))
  done;
  Alcotest.(check bool) "mean near 3.5" true (Float.abs (Stats.mean s -. 3.5) < 0.1)

let test_poisson_zero () =
  let g = Rng.of_seed 19L in
  Alcotest.(check int) "lambda=0" 0 (Sampling.poisson g 0.0)

let test_exponential_mean () =
  let g = Rng.of_seed 20L in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (Sampling.exponential g 0.5)
  done;
  Alcotest.(check bool) "mean near 2" true (Float.abs (Stats.mean s -. 2.0) < 0.05)

let test_shuffle_permutation () =
  let g = Rng.of_seed 21L in
  let a = Array.init 50 Fun.id in
  Sampling.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let g = Rng.of_seed 22L in
  for _ = 1 to 100 do
    let s = Sampling.sample_without_replacement g 5 20 in
    Alcotest.(check int) "size" 5 (List.length s);
    Alcotest.(check bool) "sorted distinct in range" true
      (List.for_all (fun x -> x >= 0 && x < 20) s
      && List.sort_uniq compare s = s)
  done;
  Alcotest.(check (list int)) "k=n is everything" (List.init 5 Fun.id)
    (Sampling.sample_without_replacement g 5 5)

(* --- Stats ----------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  check_float "mean" 2.5 (Stats.mean s);
  check_float "variance" (5.0 /. 3.0) (Stats.variance s);
  check_float "min" 1.0 (Stats.min_value s);
  check_float "max" 4.0 (Stats.max_value s);
  check_float "total" 10.0 (Stats.total s);
  Alcotest.(check int) "count" 4 (Stats.count s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Stats.variance s))

let test_stats_single () =
  let s = Stats.of_list [ 5.0 ] in
  check_float "mean" 5.0 (Stats.mean s);
  Alcotest.(check bool) "variance nan with one sample" true (Float.is_nan (Stats.variance s))

let test_stats_merge () =
  let a = Stats.of_list [ 1.0; 2.0; 3.0 ] in
  let b = Stats.of_list [ 10.0; 20.0 ] in
  let m = Stats.merge a b in
  let direct = Stats.of_list [ 1.0; 2.0; 3.0; 10.0; 20.0 ] in
  check_float "merged mean" (Stats.mean direct) (Stats.mean m);
  Alcotest.(check (float 1e-9)) "merged variance" (Stats.variance direct) (Stats.variance m);
  Alcotest.(check int) "merged count" 5 (Stats.count m)

let test_stats_merge_empty () =
  let a = Stats.of_list [ 1.0; 2.0 ] in
  let e = Stats.create () in
  check_float "merge with empty (right)" (Stats.mean a) (Stats.mean (Stats.merge a e));
  check_float "merge with empty (left)" (Stats.mean a) (Stats.mean (Stats.merge e a))

let test_quantile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "q0 = min" 1.0 (Stats.quantile xs 0.0);
  check_float "q1 = max" 4.0 (Stats.quantile xs 1.0);
  check_float "median interpolates" 2.5 (Stats.median xs);
  check_float "q0.25" 1.75 (Stats.quantile xs 0.25)

let test_quantile_invalid () =
  Alcotest.check_raises "empty rejected" (Invalid_argument "Stats.quantile: empty array")
    (fun () -> ignore (Stats.quantile [||] 0.5));
  Alcotest.check_raises "q out of range" (Invalid_argument "Stats.quantile: q out of range")
    (fun () -> ignore (Stats.quantile [| 1.0 |] 1.5))

let test_cv () =
  let s = Stats.of_list [ 10.0; 10.0; 10.0 ] in
  check_float "cv of constant" 0.0 (Stats.coefficient_of_variation s)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.0; 3.0; 9.9; -5.0; 15.0 ];
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "total" 6 (Stats.Histogram.total h);
  Alcotest.(check int) "clamped low" 3 counts.(0);
  Alcotest.(check int) "clamped high" 2 counts.(4);
  check_float "bin mid" 1.0 (Stats.Histogram.bin_mid h 0)

(* --- Hex ------------------------------------------------------------- *)

let test_hex_roundtrip () =
  let s = "\x00\x01\xfe\xff hello" in
  Alcotest.(check string) "roundtrip" s (Hex.decode (Hex.encode s))

let test_hex_known () =
  Alcotest.(check string) "encode" "deadbeef" (Hex.encode "\xde\xad\xbe\xef");
  Alcotest.(check string) "decode uppercase" "\xde\xad\xbe\xef" (Hex.decode "DEADBEEF")

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.decode: non-hex character")
    (fun () -> ignore (Hex.decode "zz"))

(* --- Table ----------------------------------------------------------- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_table_renders () =
  let t = Table.create ~title:"t" ~columns:[ ("a", Table.Left); ("b", Table.Right) ] () in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 1 = "t");
  Alcotest.(check bool) "contains row" true (contains s "yy");
  Alcotest.(check bool) "contains header" true (contains s "| a")

let test_table_arity () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] () in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_csv () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("v", Table.Right) ] () in
  Table.add_row t [ "plain"; "1" ];
  Table.add_row t [ "with,comma"; "quote\"inside" ];
  Alcotest.(check string) "csv escaping"
    "name,v\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n" (Table.to_csv t)

let test_table_formats () =
  Alcotest.(check string) "fpct" "12.50%" (Table.fpct 0.125);
  Alcotest.(check string) "f2" "3.14" (Table.f2 3.14159);
  Alcotest.(check string) "int" "42" (Table.int 42)

(* --- Alias tables ----------------------------------------------------- *)

let test_alias_single () =
  let t = Alias.create [| 3.0 |] in
  Alcotest.(check int) "size" 1 (Alias.size t);
  check_float "probability" 1.0 (Alias.probability t 0);
  let g = Rng.of_seed 5L in
  for _ = 1 to 100 do
    Alcotest.(check int) "always index 0" 0 (Alias.sample t g)
  done

let test_alias_zero_weight_excluded () =
  let t = Alias.create [| 1.0; 0.0; 1.0 |] in
  check_float "zero weight has zero probability" 0.0 (Alias.probability t 1);
  let g = Rng.of_seed 11L in
  for _ = 1 to 2000 do
    Alcotest.(check bool) "never samples a zero-weight index" true (Alias.sample t g <> 1)
  done

let test_alias_invalid () =
  let raises name msg weights =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        ignore (Alias.create weights))
  in
  raises "empty" "Alias.create: empty weight vector" [||];
  raises "all zero" "Alias.create: all weights are zero" [| 0.0; 0.0 |];
  let bad = "Alias.create: weights must be finite and non-negative" in
  raises "negative" bad [| 1.0; -1.0 |];
  raises "nan" bad [| 1.0; Float.nan |];
  raises "infinite" bad [| 1.0; Float.infinity |]

let test_alias_probability_normalizes () =
  let weights = [| 2.0; 6.0; 0.0; 4.0 |] in
  let t = Alias.create weights in
  check_float "w0" (2.0 /. 12.0) (Alias.probability t 0);
  check_float "w1" (6.0 /. 12.0) (Alias.probability t 1);
  check_float "w2" 0.0 (Alias.probability t 2);
  check_float "w3" (4.0 /. 12.0) (Alias.probability t 3)

let test_alias_deterministic () =
  let weights = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let a = Alias.create weights and b = Alias.create weights in
  let ga = Rng.of_seed 21L and gb = Rng.of_seed 21L in
  for _ = 1 to 500 do
    Alcotest.(check int) "same table, same stream" (Alias.sample a ga) (Alias.sample b gb)
  done

let test_alias_two_draws () =
  (* The O(1) contract: a sample consumes exactly two draws, so a sample
     followed by a raw draw matches two skipped draws followed by the same
     raw draw on a twin stream. *)
  let t = Alias.create [| 1.0; 2.0; 3.0 |] in
  let a = Rng.of_seed 33L and b = Rng.of_seed 33L in
  ignore (Alias.sample t a);
  ignore (Rng.bits64 b);
  ignore (Rng.bits64 b);
  Alcotest.(check int64) "exactly two draws per sample" (Rng.bits64 b) (Rng.bits64 a)

(* --- binomial_pos / gini ---------------------------------------------- *)

let test_binomial_pos_edges () =
  let g = Rng.of_seed 3L in
  Alcotest.(check int) "p=1 gives n" 7 (Sampling.binomial_pos g 7 1.0);
  Alcotest.(check int) "n=1 gives 1" 1 (Sampling.binomial_pos g 1 0.3);
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Sampling.binomial_pos: need n > 0") (fun () ->
      ignore (Sampling.binomial_pos g 0 0.5));
  Alcotest.check_raises "p=0 rejected"
    (Invalid_argument "Sampling.binomial_pos: need p > 0") (fun () ->
      ignore (Sampling.binomial_pos g 5 0.0))

let test_binomial_pos_mean () =
  (* E[Bin(n,p) | >= 1] = n*p / (1 - (1-p)^n). *)
  let g = Rng.of_seed 17L in
  let n = 50 and p = 0.02 and trials = 20_000 in
  let total = ref 0 in
  for _ = 1 to trials do
    let x = Sampling.binomial_pos g n p in
    Alcotest.(check bool) "in [1, n]" true (x >= 1 && x <= n);
    total := !total + x
  done;
  let mean = float_of_int !total /. float_of_int trials in
  let expected =
    float_of_int n *. p /. -.Float.expm1 (float_of_int n *. Float.log1p (-.p))
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f within 2%% of %.4f" mean expected)
    true
    (Float.abs (mean -. expected) < 0.02 *. expected)

let test_gini_known () =
  check_float "equal shares" 0.0 (Stats.gini [| 5.0; 5.0; 5.0; 5.0 |]);
  check_float "one-hot" 0.75 (Stats.gini [| 0.0; 0.0; 0.0; 1.0 |]);
  check_float "all zero" 0.0 (Stats.gini [| 0.0; 0.0 |]);
  check_float "scale invariant" (Stats.gini [| 1.0; 2.0; 3.0 |])
    (Stats.gini [| 10.0; 20.0; 30.0 |])

let test_gini_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.gini: empty array") (fun () ->
      ignore (Stats.gini [||]));
  Alcotest.check_raises "negative" (Invalid_argument "Stats.gini: negative value")
    (fun () -> ignore (Stats.gini [| 1.0; -2.0 |]))

(* --- QCheck properties ----------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"hex roundtrip (random bytes)" ~count:500 (string_of_size Gen.(0 -- 64))
      (fun s -> Hex.decode (Hex.encode s) = s);
    Test.make ~name:"hex encode length doubles" ~count:200 string (fun s ->
        String.length (Hex.encode s) = 2 * String.length s);
    Test.make ~name:"stats merge = concat" ~count:200
      (pair (list (float_bound_exclusive 1000.0)) (list (float_bound_exclusive 1000.0)))
      (fun (xs, ys) ->
        let m = Stats.merge (Stats.of_list xs) (Stats.of_list ys) in
        let d = Stats.of_list (xs @ ys) in
        Stats.count m = Stats.count d
        && (Stats.count d = 0 || Float.abs (Stats.mean m -. Stats.mean d) < 1e-6));
    Test.make ~name:"quantile between min and max" ~count:200
      (pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0)) (float_bound_inclusive 1.0))
      (fun (xs, q) ->
        let a = Array.of_list xs in
        let v = Stats.quantile a q in
        v >= Stats.quantile a 0.0 -. 1e-9 && v <= Stats.quantile a 1.0 +. 1e-9);
    Test.make ~name:"binomial within [0,n]" ~count:200 (int_bound 200) (fun n ->
        let g = Rng.of_seed (Int64.of_int (n + 1)) in
        let x = Sampling.binomial g n 0.37 in
        x >= 0 && x <= n);
    Test.make ~name:"shuffle preserves multiset" ~count:200 (list (int_bound 100)) (fun xs ->
        let g = Rng.of_seed 77L in
        let a = Array.of_list xs in
        Sampling.shuffle g a;
        List.sort compare (Array.to_list a) = List.sort compare xs);
    Test.make ~name:"alias sampling matches weights" ~count:25
      (pair (int_bound 1000) (list_of_size Gen.(1 -- 8) (int_bound 20)))
      (fun (seed, ws) ->
        let ws = if List.for_all (fun w -> w = 0) ws then [ 1 ] else ws in
        let weights = Array.of_list (List.map float_of_int ws) in
        let t = Alias.create weights in
        let n = Alias.size t in
        let g = Rng.of_seed (Int64.of_int (seed + 1)) in
        let trials = 30_000 in
        let counts = Array.make n 0 in
        for _ = 1 to trials do
          let i = Alias.sample t g in
          counts.(i) <- counts.(i) + 1
        done;
        let ok = ref true in
        for i = 0 to n - 1 do
          let p = Alias.probability t i in
          let emp = float_of_int counts.(i) /. float_of_int trials in
          let sigma = Float.sqrt (p *. (1.0 -. p) /. float_of_int trials) in
          if Float.abs (emp -. p) > (5.0 *. sigma) +. 1e-9 then ok := false
        done;
        !ok);
    Test.make ~name:"alias rebuild tracks the new weight vector" ~count:200
      (pair
         (list_of_size Gen.(1 -- 6) (int_bound 9))
         (list_of_size Gen.(1 -- 6) (int_bound 9)))
      (fun (ws1, ws2) ->
        (* A power change on the sparse plane rebuilds the table from the
           new vector; the old table is immutable and keeps its law. *)
        let fix ws =
          let ws = List.map float_of_int ws in
          if List.for_all (fun w -> w = 0.0) ws then [ 1.0 ] else ws
        in
        let w1 = Array.of_list (fix ws1) and w2 = Array.of_list (fix ws2) in
        let t1 = Alias.create w1 in
        let t2 = Alias.create w2 in
        let matches t w =
          let total = Array.fold_left ( +. ) 0.0 w in
          let ok = ref true in
          Array.iteri
            (fun i wi ->
              if Float.abs (Alias.probability t i -. (wi /. total)) > 1e-9 then
                ok := false)
            w;
          !ok
        in
        matches t2 w2 && matches t1 w1);
    Test.make ~name:"binomial_pos within [1,n]" ~count:300
      (pair (int_bound 99) (int_bound 1000))
      (fun (n, seed) ->
        let n = n + 1 in
        let g = Rng.of_seed (Int64.of_int (seed + 1)) in
        let x = Sampling.binomial_pos g n 0.07 in
        x >= 1 && x <= n);
    Test.make ~name:"geometric skip never lands past a win round" ~count:50
      (int_bound 1000)
      (fun seed ->
        (* The sparse scheduler draws the gap to the next winning round
           from Geometric(pb) with pb = 1-(1-p)^Q, then the win count at
           that round from Binomial(Q,p) conditioned positive. The two
           compose to the per-query Bernoulli marginal: total wins over R
           rounds must match Binomial(R*Q, p). *)
        let g = Rng.of_seed (Int64.of_int (seed + 1)) in
        let rounds = 4_000 and q = 8 in
        let p = 0.004 in
        let pb = -.Float.expm1 (float_of_int q *. Float.log1p (-.p)) in
        let total = ref 0 in
        let r = ref (Sampling.geometric g pb) in
        while !r < rounds do
          let wins = Sampling.binomial_pos g q p in
          if wins < 1 then total := min_int;
          total := !total + wins;
          r := !r + 1 + Sampling.geometric g pb
        done;
        let mean = float_of_int (rounds * q) *. p in
        let sigma = Float.sqrt (mean *. (1.0 -. p)) in
        Float.abs (float_of_int !total -. mean) < 6.0 *. sigma);
  ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
          Alcotest.test_case "geometric invalid" `Quick test_geometric_invalid;
          Alcotest.test_case "binomial edges" `Quick test_binomial_edges;
          Alcotest.test_case "binomial mean (small)" `Quick test_binomial_mean_small;
          Alcotest.test_case "binomial mean (large)" `Quick test_binomial_mean_large;
          Alcotest.test_case "binomial range" `Quick test_binomial_range;
          Alcotest.test_case "binomial_pos edges" `Quick test_binomial_pos_edges;
          Alcotest.test_case "binomial_pos mean" `Quick test_binomial_pos_mean;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
          Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "single" `Quick test_stats_single;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge with empty" `Quick test_stats_merge_empty;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "quantile invalid" `Quick test_quantile_invalid;
          Alcotest.test_case "cv" `Quick test_cv;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "gini known values" `Quick test_gini_known;
          Alcotest.test_case "gini invalid" `Quick test_gini_invalid;
        ] );
      ( "alias",
        [
          Alcotest.test_case "single entry" `Quick test_alias_single;
          Alcotest.test_case "zero weight excluded" `Quick test_alias_zero_weight_excluded;
          Alcotest.test_case "invalid weights" `Quick test_alias_invalid;
          Alcotest.test_case "probability normalizes" `Quick test_alias_probability_normalizes;
          Alcotest.test_case "deterministic construction" `Quick test_alias_deterministic;
          Alcotest.test_case "exactly two draws" `Quick test_alias_two_draws;
        ] );
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "known vectors" `Quick test_hex_known;
          Alcotest.test_case "invalid input" `Quick test_hex_invalid;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "arity check" `Quick test_table_arity;
          Alcotest.test_case "cell formats" `Quick test_table_formats;
          Alcotest.test_case "csv export" `Quick test_table_csv;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
