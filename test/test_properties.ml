(* Cross-cutting property-based tests (QCheck): randomized equivalence and
   invariant checks that single-scenario unit tests cannot cover. *)

module Rng = Fruitchain_util.Rng
module Hash = Fruitchain_crypto.Hash
module Oracle = Fruitchain_crypto.Oracle
module Lamport = Fruitchain_crypto.Lamport
module Types = Fruitchain_chain.Types
module Codec = Fruitchain_chain.Codec
module Store = Fruitchain_chain.Store
module Validate = Fruitchain_chain.Validate
module Snapshot = Fruitchain_chain.Snapshot
module Window_view = Fruitchain_core.Window_view
module Buffer_f = Fruitchain_core.Buffer
module Extract = Fruitchain_core.Extract
module Transfer = Fruitchain_currency.Transfer
module State = Fruitchain_currency.State
module Quality = Fruitchain_metrics.Quality
module Theory = Fruitchain_metrics.Selfish_theory
module Retarget = Fruitchain_difficulty.Retarget
module Scenario = Fruitchain_scenario.Scenario
module Driver = Fruitchain_scenario.Driver
module Network = Fruitchain_net.Network
module Message = Fruitchain_net.Message

let easy = Oracle.real ~p:1.0 ~pf:1.0

let mine_fruit rng ~pointer ~record =
  let header =
    {
      Types.parent = Types.genesis_hash;
      pointer;
      nonce = Rng.bits64 rng;
      digest = Fruitchain_crypto.Merkle.empty_root;
      record;
    }
  in
  { Types.f_header = header; f_hash = Oracle.query easy (Codec.header_bytes header); f_prov = None }

let mine_block rng ~parent fruits =
  let header =
    {
      Types.parent;
      pointer = parent;
      nonce = Rng.bits64 rng;
      digest = Validate.fruit_set_digest fruits;
      record = "";
    }
  in
  {
    Types.b_header = header;
    b_hash = Oracle.query easy (Codec.header_bytes header);
    fruits;
    b_prov = None;
  }

(* Build a random linear chain; at each position, include a random subset of
   a fruit pool. Returns (store, blocks, pool). *)
let random_chain seed ~length ~pool_size =
  let rng = Rng.of_seed (Int64.of_int (seed + 1)) in
  let pool =
    List.init pool_size (fun i -> mine_fruit rng ~pointer:Types.genesis_hash ~record:(Printf.sprintf "p%d" i))
  in
  let store = Store.create () in
  let rec go parent n acc =
    if n = 0 then List.rev acc
    else begin
      let fruits =
        List.filteri (fun i _ -> Rng.bernoulli rng 0.2 && i mod (n + 1) <> 0) pool
      in
      (* Avoid duplicate inclusion across blocks: thin the pool choice by
         filtering already-included fruits. *)
      let included =
        List.concat_map (fun (b : Types.block) -> b.fruits) acc
      in
      let fresh =
        List.filter
          (fun (f : Types.fruit) ->
            not (List.exists (fun (g : Types.fruit) -> Types.fruit_equal f g) included))
          fruits
      in
      let b = mine_block rng ~parent fresh in
      Store.add store b;
      go b.Types.b_hash (n - 1) (b :: acc)
    end
  in
  let blocks = go Types.genesis_hash length [] in
  (store, blocks, pool)

let qcheck_buffer_advance_equals_refresh =
  QCheck.Test.make ~name:"buffer: advance == refresh on random chains" ~count:40
    QCheck.(pair (int_bound 1000) (int_range 1 8))
    (fun (seed, window) ->
      let store, blocks, pool = random_chain seed ~length:10 ~pool_size:12 in
      let incremental = Buffer_f.create () in
      let reference = Buffer_f.create () in
      List.iter
        (fun f ->
          Buffer_f.add incremental ~view:Window_view.genesis f;
          Buffer_f.add reference ~view:Window_view.genesis f)
        pool;
      let final_view =
        List.fold_left
          (fun view b ->
            let view = Window_view.extend ~window view b in
            Buffer_f.advance incremental ~view ~block:b;
            view)
          Window_view.genesis blocks
      in
      Buffer_f.refresh reference ~store ~view:final_view;
      let hashes buf =
        List.map (fun (f : Types.fruit) -> Hash.to_hex f.f_hash) (Buffer_f.candidates buf)
      in
      hashes incremental = hashes reference)

let qcheck_window_view_scan_equals_extend =
  QCheck.Test.make ~name:"window view: of_chain == extend chain" ~count:40
    QCheck.(pair (int_bound 1000) (int_range 1 6))
    (fun (seed, window) ->
      let store, blocks, pool = random_chain seed ~length:8 ~pool_size:10 in
      let head = (List.nth blocks 7).Types.b_hash in
      let by_extend =
        List.fold_left (fun v b -> Window_view.extend ~window v b) Window_view.genesis blocks
      in
      let by_scan = Window_view.of_chain ~window ~store ~head in
      List.for_all
        (fun (b : Types.block) ->
          Window_view.is_recent by_extend ~pointer:b.b_hash
          = Window_view.is_recent by_scan ~pointer:b.b_hash)
        blocks
      && List.for_all
           (fun (f : Types.fruit) ->
             Window_view.is_included by_extend ~fruit:f.f_hash
             = Window_view.is_included by_scan ~fruit:f.f_hash)
           pool)

let qcheck_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot: roundtrip on random chains" ~count:30
    (QCheck.int_bound 1000) (fun seed ->
      let store, blocks, _ = random_chain seed ~length:6 ~pool_size:8 in
      let head = (List.nth blocks 5).Types.b_hash in
      let chain = Store.to_list store ~head in
      let chain' = Snapshot.chain_of_bytes (Snapshot.chain_to_bytes chain) in
      List.length chain = List.length chain'
      && List.for_all2 Types.block_equal chain chain'
      && Extract.ledger_of_chain chain = Extract.ledger_of_chain chain')

let qcheck_extract_dedup_invariants =
  QCheck.Test.make ~name:"extract: distinct fruits, stable under re-extraction" ~count:30
    (QCheck.int_bound 1000) (fun seed ->
      let _, blocks, _ = random_chain seed ~length:8 ~pool_size:10 in
      let chain = Types.genesis :: blocks in
      let fruits = Extract.fruits_of_chain chain in
      let hashes = List.map (fun (f : Types.fruit) -> Hash.to_hex f.f_hash) fruits in
      List.sort_uniq compare hashes = List.sort compare hashes)

let qcheck_lamport_random_messages =
  QCheck.Test.make ~name:"lamport: verify iff same message" ~count:25
    QCheck.(pair (string_of_size QCheck.Gen.(1 -- 64)) (string_of_size QCheck.Gen.(1 -- 64)))
    (fun (m1, m2) ->
      let sk, pk = Lamport.generate ~seed:"prop" in
      let s = Lamport.sign sk m1 in
      Lamport.verify pk m1 s && (String.equal m1 m2 || not (Lamport.verify pk m2 s)))

let qcheck_transfer_codec =
  QCheck.Test.make ~name:"transfer: codec roundtrip, random outputs" ~count:15
    QCheck.(list_of_size QCheck.Gen.(1 -- 5) (pair (int_bound 1000) (int_range 1 1_000_000)))
    (fun raw_outputs ->
      let sk, _ = Lamport.generate ~seed:"prop-payer" in
      let outputs =
        List.map
          (fun (r, amount) ->
            let _, pk = Lamport.generate ~seed:(Printf.sprintf "r%d" r) in
            {
              Transfer.recipient = Lamport.public_key_digest pk;
              amount = Int64.of_int amount;
            })
          raw_outputs
      in
      let t = Transfer.make ~secret:sk ~outputs in
      match Transfer.decode (Transfer.encode t) with
      | None -> false
      | Some t' ->
          Transfer.signature_valid t'
          && Int64.equal (Transfer.total t) (Transfer.total t')
          && Hash.equal (Transfer.sender_address t) (Transfer.sender_address t'))

let qcheck_state_supply_conservation =
  QCheck.Test.make ~name:"currency: transfers conserve supply" ~count:20
    (QCheck.int_bound 1000) (fun seed ->
      let rng = Rng.of_seed (Int64.of_int (seed + 7)) in
      let st = State.create () in
      (* Three funded wallets shuffle money around randomly. *)
      let wallets =
        Array.init 3 (fun i -> Fruitchain_currency.Wallet.create ~seed:(Printf.sprintf "w%d-%d" seed i))
      in
      Array.iter
        (fun w ->
          State.mint st (Fruitchain_currency.Wallet.fresh_address w)
            (Int64.of_int (100 + Rng.int rng 100)))
        wallets;
      let supply0 = State.total_supply st in
      for _ = 1 to 5 do
        let from_w = wallets.(Rng.int rng 3) in
        let to_w = wallets.(Rng.int rng 3) in
        let target = Fruitchain_currency.Wallet.fresh_address to_w in
        match
          Fruitchain_currency.Wallet.pay from_w st ~to_:target
            ~amount:(Int64.of_int (1 + Rng.int rng 50))
        with
        | Ok transfer -> (
            match State.apply st transfer with Ok () | Error _ -> ())
        | Error _ -> ()
      done;
      Int64.equal (State.total_supply st) supply0)

let qcheck_worst_window_bounds =
  QCheck.Test.make ~name:"quality: worst window bounds and minimality" ~count:100
    QCheck.(pair (list_of_size QCheck.Gen.(5 -- 60) bool) (int_range 1 10))
    (fun (flags, window) ->
      let flags = Array.of_list flags in
      QCheck.assume (Array.length flags >= window);
      let worst = Quality.worst_window_fraction flags ~window `Honest in
      (* Within [0,1], no larger than any particular window (take the
         first), and honest-worst + adversarial-worst describe the same
         extreme window family consistently. *)
      let first =
        let h = ref 0 in
        for i = 0 to window - 1 do
          if flags.(i) then incr h
        done;
        float_of_int !h /. float_of_int window
      in
      let adv_worst = Quality.worst_window_fraction flags ~window `Adversarial in
      worst >= -.1e-9 && worst <= 1.0 +. 1e-9
      && worst <= first +. 1e-9
      && adv_worst >= 1.0 -. first -. 1e-9)

let qcheck_selfish_theory_bounds =
  QCheck.Test.make ~name:"selfish theory: revenue within [0,1], monotone in gamma" ~count:100
    QCheck.(pair (float_range 0.01 0.49) (float_range 0.0 1.0))
    (fun (alpha, gamma) ->
      let r = Theory.revenue ~alpha ~gamma in
      let r_hi = Theory.revenue ~alpha ~gamma:1.0 in
      r >= -.1e-9 && r <= 1.0 +. 1e-9 && r <= r_hi +. 1e-9)

let qcheck_retarget_clamped =
  QCheck.Test.make ~name:"retarget: next_p within clamp and (0,1]" ~count:200
    QCheck.(pair (float_range 1e-6 0.9) (float_range 1.0 1_000_000.0))
    (fun (p, duration) ->
      let params = Retarget.make_params ~target_interval:25.0 () in
      let p' = Retarget.next_p params ~current_p:p ~epoch_duration:duration in
      p' > 0.0 && p' <= 1.0 && p' >= (p /. 4.0) -. 1e-12 && p' <= (p *. 4.0) +. 1e-12)

(* --- fruitstorm delivery-policy faults (lib/scenario) ------------------ *)

(* Drive a policy-equipped network round by round: every round one random
   honest party broadcasts a fruit with a uniform-in-window schedule, and
   every inbox is drained. After the scenario ends, draining continues to
   [horizon] so held messages flush. Returns the network and the delivery
   log [(sent_at, sender, recipient, delivered_at)]. *)
let drive_network s ~horizon =
  let n = s.Scenario.n and delta = s.Scenario.delta in
  let net = Network.create ~policy:(Driver.policy s) ~n ~delta () in
  let rng = Rng.of_seed (Int64.add s.Scenario.seed 13L) in
  let log = ref [] in
  let drain_round round =
    for recipient = 0 to n - 1 do
      List.iter
        (fun (m : Message.t) ->
          log := (m.Message.sent_at, m.Message.sender, recipient, round) :: !log)
        (Network.drain net ~round ~recipient)
    done
  in
  for now = 0 to s.Scenario.rounds - 1 do
    let sender = Rng.int rng n in
    let fruit = mine_fruit rng ~pointer:Types.genesis_hash ~record:(Printf.sprintf "r%d" now) in
    Network.broadcast net ~now
      ~schedule:(fun ~recipient:_ -> Network.Uniform_in_window)
      ~rng
      (Message.fruit_announce ~sender ~sent_at:now fruit);
    drain_round now
  done;
  for round = s.Scenario.rounds to horizon do
    drain_round round
  done;
  (net, List.rev !log)

let two_halves = [ [ 0; 1; 2; 3; 4 ]; [ 5; 6; 7; 8; 9 ] ]

let qcheck_policy_delta_bound_without_fault =
  QCheck.Test.make
    ~name:"scenario policy: no active fault => honest delivery within Delta" ~count:15
    QCheck.(triple (int_bound 1000) (int_range 40 120) (int_range 20 100))
    (fun (seed, from, len) ->
      let rounds = 400 in
      let until = min (rounds - 1) (from + len) in
      let s =
        Scenario.make_exn ~name:"prop" ~n:10 ~delta:3 ~rounds
          ~seed:(Int64.of_int seed)
          ~events:
            [
              Scenario.Partition { from; until; groups = two_halves };
              Scenario.Delay_spike { from = 250; until = 320; delta' = 9 };
              Scenario.Eclipse { from = 150; until = 230; party = 7 };
            ]
          ()
      in
      let net, log = drive_network s ~horizon:(rounds + 12) in
      Network.pending net = 0
      && List.for_all
           (fun (sent_at, _, _, delivered_at) ->
             Scenario.delivery_faulted s ~round:sent_at
             || delivered_at - sent_at <= s.Scenario.delta)
           log)

let qcheck_policy_partition_blocks_cross_group =
  QCheck.Test.make
    ~name:"scenario policy: active partition => zero cross-group deliveries before heal"
    ~count:15
    QCheck.(triple (int_bound 1000) (int_range 30 150) (int_range 20 150))
    (fun (seed, from, len) ->
      let rounds = 350 in
      let until = min (rounds - 1) (from + len) in
      let group_of p = if p < 5 then 0 else 1 in
      let s =
        Scenario.make_exn ~name:"prop" ~n:10 ~delta:2 ~rounds
          ~seed:(Int64.of_int seed)
          ~events:[ Scenario.Partition { from; until; groups = two_halves } ]
          ()
      in
      let net, log = drive_network s ~horizon:(rounds + 6) in
      Network.pending net = 0
      && List.for_all
           (fun (sent_at, sender, recipient, delivered_at) ->
             let cross = sender >= 0 && group_of sender <> group_of recipient in
             (not (cross && sent_at >= from && sent_at < until))
             || delivered_at >= until)
           log)

(* --- Parallel-runner seed derivation (Rng.derive + Pool) --------------- *)

let qcheck_derive_order_independent_and_distinct =
  QCheck.Test.make
    ~name:"rng: unit seeds stable under execution-order permutation, pairwise distinct"
    ~count:200
    QCheck.(pair int64 (int_range 2 64))
    (fun (master, n) ->
      let in_order = Array.init n (fun i -> Rng.derive master ~index:i) in
      (* Re-derive in a master-dependent random permutation of the indices:
         the seed a unit receives must not depend on when it executes. *)
      let perm = Array.init n Fun.id in
      let shuffle_rng = Rng.of_seed (Int64.lognot master) in
      for i = n - 1 downto 1 do
        let j = Rng.int shuffle_rng (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      let permuted = Array.make n 0L in
      Array.iter (fun i -> permuted.(i) <- Rng.derive master ~index:i) perm;
      permuted = in_order
      && List.length (List.sort_uniq Int64.compare (Array.to_list in_order)) = n)

let qcheck_derive_streams_no_reuse =
  QCheck.Test.make
    ~name:"rng: streams of derived unit seeds are pairwise distinct (no reuse)" ~count:100
    QCheck.(pair int64 (int_range 2 32))
    (fun (master, n) ->
      let prefix i =
        let g = Rng.of_seed (Rng.derive master ~index:i) in
        List.init 4 (fun _ -> Rng.bits64 g)
      in
      let prefixes = List.init n prefix in
      List.length (List.sort_uniq compare prefixes) = n)

let qcheck_pool_map_schedule_invariant =
  QCheck.Test.make
    ~name:"pool: map at any worker count equals the sequential reference" ~count:50
    QCheck.(pair int64 (pair (int_range 0 48) (int_range 2 6)))
    (fun (master, (n, jobs)) ->
      let f i = Rng.bits64 (Rng.of_seed (Rng.derive master ~index:i)) in
      Fruitchain_util.Pool.map ~jobs n ~f = Fruitchain_util.Pool.map ~jobs:1 n ~f)

let qcheck_store_heights_consistent =
  QCheck.Test.make ~name:"store: heights equal list positions" ~count:30
    (QCheck.int_bound 1000) (fun seed ->
      let store, blocks, _ = random_chain seed ~length:7 ~pool_size:5 in
      let head = (List.nth blocks 6).Types.b_hash in
      let chain = Store.to_list store ~head in
      List.for_all
        (fun (i, (b : Types.block)) -> Store.height store b.b_hash = i)
        (List.mapi (fun i b -> (i, b)) chain))

let () =
  Alcotest.run "properties"
    [
      ( "randomized",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_buffer_advance_equals_refresh;
            qcheck_window_view_scan_equals_extend;
            qcheck_snapshot_roundtrip;
            qcheck_extract_dedup_invariants;
            qcheck_lamport_random_messages;
            qcheck_transfer_codec;
            qcheck_state_supply_conservation;
            qcheck_worst_window_bounds;
            qcheck_selfish_theory_bounds;
            qcheck_retarget_clamped;
            qcheck_policy_delta_bound_without_fault;
            qcheck_policy_partition_blocks_cross_group;
            qcheck_derive_order_independent_and_distinct;
            qcheck_derive_streams_no_reuse;
            qcheck_pool_map_schedule_invariant;
            qcheck_store_heights_consistent;
          ] );
    ]
