(* Tests for fruitlint (tools/lint): each rule R1-R4 against positive and
   negative fixture files, suppression comments, the CLI exit code, and a
   final check that the real tree is lint-clean. *)

module Lint = Fruitlint_lib.Lint

let fx sub = Filename.concat "fixtures" sub
let summarize = List.map (fun (d : Lint.diag) -> (d.file, d.line, Lint.rule_name d.rule))

let check_diags name expected diags =
  Alcotest.(check (list (triple string int string))) name expected (summarize diags)

(* --- R1: determinism ------------------------------------------------- *)

let test_r1_fires () =
  let file = fx "lib/sim/r1_bad.ml" in
  check_diags "every nondeterministic use is flagged"
    [ (file, 2, "R1"); (file, 3, "R1"); (file, 4, "R1"); (file, 5, "R1"); (file, 6, "R1") ]
    (Lint.lint_files ~only:[ Lint.R1 ] [ file ])

let test_r1_clean () =
  check_diags "seeded streams, benign Sys, suppressions pass" []
    (Lint.lint_files ~only:[ Lint.R1 ] [ fx "lib/sim/r1_ok.ml" ])

let test_r1_allowlist () =
  (* The one blessed randomness source would trip R1 on its own content
     (it *is* about random state), so the allowlist must cover it. *)
  check_diags "lib/util/rng.ml is allowlisted" []
    (Lint.lint_source ~only:[ Lint.R1 ] ~path:"lib/util/rng.ml"
       "let nondeterministic () = Random.bits ()")

(* --- R2: polymorphic compare ----------------------------------------- *)

let test_r2_fires () =
  let file = fx "lib/chain/r2_bad.ml" in
  check_diags "=, <>, compare, ==, Stdlib.compare all flagged"
    [ (file, 2, "R2"); (file, 3, "R2"); (file, 4, "R2"); (file, 5, "R2"); (file, 6, "R2") ]
    (Lint.lint_files ~only:[ Lint.R2 ] [ file ])

let test_r2_clean () =
  check_diags "typed equality and suppression pass" []
    (Lint.lint_files ~only:[ Lint.R2 ] [ fx "lib/chain/r2_ok.ml" ])

let test_r2_scoped () =
  check_diags "poly compare outside chain/crypto/core/net is allowed" []
    (Lint.lint_files ~only:[ Lint.R2 ] [ fx "lib/util/r2_elsewhere.ml" ])

let test_r2_net () =
  (* Envelope ordering is the delivery-determinism contract, so lib/net is
     in scope for R2 like the digest-bearing directories. *)
  let file = fx "lib/net/r2_bad.ml" in
  check_diags "poly compare in lib/net is flagged"
    [ (file, 2, "R2"); (file, 3, "R2"); (file, 4, "R2"); (file, 5, "R2"); (file, 6, "R2") ]
    (Lint.lint_files ~only:[ Lint.R2 ] [ file ])

(* --- R3: total validation -------------------------------------------- *)

let test_r3_fires () =
  let file = fx "lib/chain/validate.ml" in
  check_diags "failwith, raise, assert, invalid_arg all flagged"
    [ (file, 2, "R3"); (file, 3, "R3"); (file, 4, "R3"); (file, 5, "R3") ]
    (Lint.lint_files ~only:[ Lint.R3 ] [ file ])

let test_r3_scoped () =
  check_diags "raising outside the hot-path files is allowed" []
    (Lint.lint_files ~only:[ Lint.R3 ] [ fx "lib/chain/codec_helpers.ml" ])

let test_r3_clean () =
  check_diags "result-returning hot path passes" []
    (Lint.lint_files ~only:[ Lint.R3 ] [ fx "lib/core/extract.ml" ])

(* --- R4: interface completeness -------------------------------------- *)

let test_r4 () =
  check_diags "only the lib/ unit without an .mli is flagged"
    [ (fx "r4/lib/missing_mli.ml", 1, "R4") ]
    (Lint.lint_files ~only:[ Lint.R4 ] [ fx "r4" ])

(* --- R5: concurrency confinement -------------------------------------- *)

let test_r5_fires () =
  let file = fx "lib/sim/r5_bad.ml" in
  check_diags "Domain, Atomic, Mutex, Condition, Stdlib.Domain all flagged"
    [ (file, 2, "R5"); (file, 3, "R5"); (file, 4, "R5"); (file, 5, "R5"); (file, 6, "R5") ]
    (Lint.lint_files ~only:[ Lint.R5 ] [ file ])

let test_r5_clean () =
  check_diags "pool-mediated parallelism and suppression pass" []
    (Lint.lint_files ~only:[ Lint.R5 ] [ fx "lib/sim/r5_ok.ml" ])

let test_r5_allowlist () =
  (* The worker pool is the one blessed home for concurrency primitives. *)
  check_diags "lib/util/pool.ml is allowlisted" []
    (Lint.lint_source ~only:[ Lint.R5 ] ~path:"lib/util/pool.ml"
       "let d = Domain.spawn (fun () -> Atomic.make 0)")

let test_r5_module_alias () =
  (* The module_expr path: [module D = Domain] smuggles the primitive in. *)
  Alcotest.(check (list string)) "module alias is flagged" [ "R5" ]
    (List.map
       (fun (d : Lint.diag) -> Lint.rule_name d.rule)
       (Lint.lint_source ~only:[ Lint.R5 ] ~path:"lib/sim/x.ml" "module D = Domain"))

(* --- R6: clock confinement -------------------------------------------- *)

let test_r6_fires () =
  let file = fx "lib/sim/r6_bad.ml" in
  check_diags "gettimeofday, Sys.time, Unix.time, gmtime, Stdlib.Sys.time all flagged"
    [ (file, 2, "R6"); (file, 3, "R6"); (file, 4, "R6"); (file, 5, "R6"); (file, 6, "R6") ]
    (Lint.lint_files ~only:[ Lint.R6 ] [ file ])

let test_r6_clean () =
  check_diags "Obs.Clock use, benign Sys access, and suppressions pass" []
    (Lint.lint_files ~only:[ Lint.R6 ] [ fx "lib/sim/r6_ok.ml" ])

let test_r6_allowlist () =
  (* The clock module is the one blessed home for wall-clock reads. *)
  check_diags "lib/obs/clock.ml is allowlisted" []
    (Lint.lint_source ~only:[ Lint.R6 ] ~path:"lib/obs/clock.ml"
       "let now_s () = Unix.gettimeofday ()\nlet cpu_s () = Sys.time ()")

let test_r6_distinct_from_r1 () =
  (* R6 is narrower than R1: Unix.getenv leaks system state (R1) but is not
     a clock read, while both rules flag Unix.gettimeofday outside their
     allowlists. *)
  let diags path content only = Lint.lint_source ~only ~path content in
  Alcotest.(check (list string)) "getenv is R1 but not R6" [ "R1" ]
    (List.map
       (fun (d : Lint.diag) -> Lint.rule_name d.rule)
       (diags "lib/sim/x.ml" "let home () = Unix.getenv \"HOME\"" [ Lint.R1; Lint.R6 ]));
  Alcotest.(check (list string)) "gettimeofday is both R1 and R6" [ "R1"; "R6" ]
    (List.map
       (fun (d : Lint.diag) -> Lint.rule_name d.rule)
       (diags "lib/sim/x.ml" "let now () = Unix.gettimeofday ()" [ Lint.R1; Lint.R6 ]))

(* --- R7: input confinement --------------------------------------------- *)

let test_r7_fires () =
  let file = fx "lib/sim/r7_bad.ml" in
  check_diags "open_in, open_in_bin, open_in_gen, In_channel, Stdlib.open_in all flagged"
    [ (file, 2, "R7"); (file, 3, "R7"); (file, 4, "R7"); (file, 5, "R7"); (file, 6, "R7") ]
    (Lint.lint_files ~only:[ Lint.R7 ] [ file ])

let test_r7_clean () =
  check_diags "parsing provided contents, write channels, suppressions pass" []
    (Lint.lint_files ~only:[ Lint.R7 ] [ fx "lib/sim/r7_ok.ml" ])

let test_r7_allowlist () =
  (* The scenario loader and the snapshot store are the blessed readers. *)
  check_diags "lib/scenario/loader.ml is allowlisted" []
    (Lint.lint_source ~only:[ Lint.R7 ] ~path:"lib/scenario/loader.ml"
       "let read path = open_in_bin path");
  check_diags "lib/chain/snapshot.ml is allowlisted" []
    (Lint.lint_source ~only:[ Lint.R7 ] ~path:"lib/chain/snapshot.ml"
       "let read path = open_in_bin path")

let test_r7_scoped_to_lib () =
  (* CLIs read files for a living; the rule only guards the libraries. *)
  check_diags "open_in outside lib/ is allowed" []
    (Lint.lint_source ~only:[ Lint.R7 ] ~path:"bin/main.ml"
       "let read path = open_in_bin path")

(* --- Suppression parsing --------------------------------------------- *)

let test_suppression_is_per_rule () =
  (* An R1 suppression must not silence an R2 violation on the same line. *)
  let diags =
    Lint.lint_source ~only:Lint.all_rules ~path:"lib/chain/x.ml"
      "(* fruitlint: allow R1 *)\nlet f a b = a = b\n"
  in
  Alcotest.(check (list string)) "R2 survives an R1 suppression" [ "R2" ]
    (List.map (fun (d : Lint.diag) -> Lint.rule_name d.rule) diags)

let test_suppression_multi_rule () =
  let diags =
    Lint.lint_source ~only:Lint.all_rules ~path:"lib/chain/x.ml"
      "(* fruitlint: allow R1 R2 *)\nlet f a b = Hashtbl.hash a = b\n"
  in
  check_diags "one comment can allow several rules" [] diags

(* --- R8-R10: interprocedural effect inference ------------------------- *)

(* Each fixture under fixtures/interproc/ is a miniature multi-file tree
   (lib/obs, lib/sim, lib/chain ...) so that cross-library references
   resolve exactly as they do in the real repository.  The per-file pass
   is run alongside to prove each laundering pattern is invisible to it. *)

let ip sub = fx (Filename.concat "interproc" sub)

(* The syntactic effect rules: everything per-file except R4 (interface
   completeness — fixtures carry no .mli on purpose) and R8-R10. *)
let per_file_effect_rules = Lint.[ R1; R2; R3; R5; R6; R7 ]

let last_note name expected diags =
  match diags with
  | [ (d : Lint.diag) ] ->
      Alcotest.(check (option string))
        name (Some expected)
        (match List.rev d.notes with last :: _ -> Some last | [] -> None)
  | ds -> Alcotest.failf "%s: expected exactly one diagnostic, got %d" name (List.length ds)

let test_r8_module_alias_laundering () =
  (* The seeded regression the old pass provably misses: [module C =
     Fruitchain_obs.Clock] re-names the capability, and [tick] reads the
     wall clock with no Unix/Sys token in the file. *)
  let tree = ip "alias" in
  check_diags "per-file rules see nothing" []
    (Lint.lint_files ~only:per_file_effect_rules [ tree ]);
  let diags = Lint.lint_files ~only:[ Lint.R8 ] [ tree ] in
  check_diags "R8 flags the laundering binding"
    [ (Filename.concat tree "lib/sim/ticker.ml", 7, "R8") ]
    diags;
  last_note "the effect path ends at the clock primitive" "Unix.gettimeofday" diags

let test_r8_include_reexport () =
  let tree = ip "incl" in
  check_diags "per-file rules see nothing" []
    (Lint.lint_files ~only:per_file_effect_rules [ tree ]);
  let diags = Lint.lint_files ~only:[ Lint.R8 ] [ tree ] in
  check_diags "R8 resolves through the include to the consumer"
    [ (Filename.concat tree "lib/sim/consume.ml", 3, "R8") ]
    diags;
  last_note "path reaches the primitive behind the include" "Unix.gettimeofday" diags

let test_r8_partial_application () =
  let tree = ip "partial" in
  check_diags "per-file rules see nothing" []
    (Lint.lint_files ~only:per_file_effect_rules [ tree ]);
  (* Only the effectful partial application is flagged; the pure one
     ([diff 0.0]) stays clean. *)
  check_diags "effectful closure flagged, pure closure clean"
    [ (Filename.concat tree "lib/sim/sampler.ml", 4, "R8") ]
    (Lint.lint_files ~only:[ Lint.R8 ] [ tree ])

let test_r8_functor_smuggling () =
  let tree = ip "functor" in
  (* The per-file pass flags the origin (Random.int inside the functor
     body) but is blind to the instantiation site that actually uses it. *)
  check_diags "per-file pass sees only the origin"
    [ (Filename.concat tree "lib/sim/maker.ml", 7, "R1") ]
    (Lint.lint_files ~only:per_file_effect_rules [ tree ]);
  let diags = Lint.lint_files ~only:[ Lint.R8 ] [ tree ] in
  check_diags "R8 flags the use through the functor application"
    [ (Filename.concat tree "lib/sim/harness.ml", 7, "R8") ]
    diags;
  last_note "path threads the functor application" "Random.int" diags

let test_r9_pool_capture () =
  let tree = ip "pool" in
  check_diags "per-file rules see nothing" []
    (Lint.lint_files ~only:per_file_effect_rules [ tree ]);
  (* [racy_work] captures a mutated top-level ref; [pure_work]'s local
     accumulator is fine. *)
  check_diags "only the racy work unit is flagged"
    [ (Filename.concat tree "lib/sim/worker.ml", 9, "R9") ]
    (Lint.lint_files ~only:[ Lint.R9 ] [ tree ])

let test_r10_transitive_raise () =
  let tree = ip "raise" in
  (* R3 only sees raising tokens inside validate.ml itself — there are
     none; the exception is three calls away. *)
  check_diags "R3 alone misses the chain" []
    (Lint.lint_files ~only:[ Lint.R3 ] [ tree ]);
  let diags = Lint.lint_files ~only:[ Lint.R10 ] [ tree ] in
  check_diags "R10 flags the entry point of the 3-hop chain"
    [ (Filename.concat tree "lib/chain/validate.ml", 4, "R10") ]
    diags;
  (match diags with
  | [ d ] ->
      Alcotest.(check int) "the rendered path has 4 hops (3 defs + origin)" 4
        (List.length d.notes)
  | _ -> Alcotest.fail "expected exactly one R10 diagnostic");
  last_note "path ends at the raising primitive" "invalid_arg" diags

let test_fixpoint_mutual_recursion () =
  (* validate.ml and helper.ml call each other across compilation units;
     the fixpoint must terminate (divergence raises Failure via the
     round bail-out) and the raise must surface at the entry point. *)
  let tree = ip "mutual" in
  check_diags "cycle converges and the raise surfaces"
    [ (Filename.concat tree "lib/chain/validate.ml", 4, "R10") ]
    (Lint.lint_files ~only:[ Lint.R8; Lint.R9; Lint.R10 ] [ tree ])

let test_seed_suppression_counted () =
  (* An allow comment at the raising occurrence stops the Raises effect at
     its origin — the downstream entry point stays total — and the report
     counts the silenced origin instead of dropping it silently. *)
  let r = Lint.lint_files_report ~only:[ Lint.R10 ] [ ip "suppress" ] in
  Alcotest.(check (list (triple string int string))) "no violations reach the entry point" []
    (summarize r.diags);
  Alcotest.(check int) "the silenced origin is counted" 1 r.seed_suppressions;
  (* Without the suppression machinery the same tree would be flagged:
     the unsuppressed 3-hop fixture proves the effect does propagate. *)
  let r' = Lint.lint_files_report ~only:[ Lint.R10 ] [ ip "raise" ] in
  Alcotest.(check int) "unsuppressed origin still propagates" 1 (List.length r'.diags);
  Alcotest.(check int) "and is not counted as silenced" 0 r'.seed_suppressions

(* --- CLI exit codes --------------------------------------------------- *)

let exe = Filename.concat ".." (Filename.concat "tools" (Filename.concat "lint" "main.exe"))

let run_cli args =
  match Sys.command (Filename.quote_command exe args ~stdout:Filename.null) with
  | code -> code

let test_cli_exit () =
  if not (Sys.file_exists exe) then () (* exe not staged in this runner; library tests cover the rules *)
  else begin
    Alcotest.(check int) "violations exit 1" 1
      (run_cli [ "--only"; "R1"; fx "lib/sim/r1_bad.ml" ]);
    Alcotest.(check int) "clean input exits 0" 0
      (run_cli [ "--only"; "R1"; fx "lib/sim/r1_ok.ml" ]);
    Alcotest.(check int) "unknown path exits 2" 2 (run_cli [ fx "no/such/path.ml" ])
  end

(* --- The real tree ----------------------------------------------------- *)

let test_tree_clean () =
  (* Tests run from _build/default/test; the build has already copied the
     sources of every built directory next to it. *)
  let roots =
    List.filter Sys.file_exists
      [ Filename.parent_dir_name ^ "/lib";
        Filename.parent_dir_name ^ "/bin";
        Filename.parent_dir_name ^ "/bench" ]
  in
  match roots with
  | [] -> Alcotest.skip ()
  | roots -> check_diags "lib/, bin/, bench/ are lint-clean" [] (Lint.lint_files roots)

let () =
  Alcotest.run "lint"
    [
      ( "R1 determinism",
        [
          Alcotest.test_case "fires" `Quick test_r1_fires;
          Alcotest.test_case "clean" `Quick test_r1_clean;
          Alcotest.test_case "allowlist" `Quick test_r1_allowlist;
        ] );
      ( "R2 poly compare",
        [
          Alcotest.test_case "fires" `Quick test_r2_fires;
          Alcotest.test_case "clean" `Quick test_r2_clean;
          Alcotest.test_case "scoped" `Quick test_r2_scoped;
          Alcotest.test_case "net in scope" `Quick test_r2_net;
        ] );
      ( "R3 totality",
        [
          Alcotest.test_case "fires" `Quick test_r3_fires;
          Alcotest.test_case "scoped" `Quick test_r3_scoped;
          Alcotest.test_case "clean" `Quick test_r3_clean;
        ] );
      ("R4 interfaces", [ Alcotest.test_case "missing mli" `Quick test_r4 ]);
      ( "R5 concurrency confinement",
        [
          Alcotest.test_case "fires" `Quick test_r5_fires;
          Alcotest.test_case "clean" `Quick test_r5_clean;
          Alcotest.test_case "allowlist" `Quick test_r5_allowlist;
          Alcotest.test_case "module alias" `Quick test_r5_module_alias;
        ] );
      ( "R6 clock confinement",
        [
          Alcotest.test_case "fires" `Quick test_r6_fires;
          Alcotest.test_case "clean" `Quick test_r6_clean;
          Alcotest.test_case "allowlist" `Quick test_r6_allowlist;
          Alcotest.test_case "distinct from R1" `Quick test_r6_distinct_from_r1;
        ] );
      ( "R7 input confinement",
        [
          Alcotest.test_case "fires" `Quick test_r7_fires;
          Alcotest.test_case "clean" `Quick test_r7_clean;
          Alcotest.test_case "allowlist" `Quick test_r7_allowlist;
          Alcotest.test_case "scoped to lib" `Quick test_r7_scoped_to_lib;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "per rule" `Quick test_suppression_is_per_rule;
          Alcotest.test_case "multi rule" `Quick test_suppression_multi_rule;
        ] );
      ( "R8-R10 interprocedural",
        [
          Alcotest.test_case "module-alias laundering" `Quick test_r8_module_alias_laundering;
          Alcotest.test_case "include re-export" `Quick test_r8_include_reexport;
          Alcotest.test_case "partial application" `Quick test_r8_partial_application;
          Alcotest.test_case "functor smuggling" `Quick test_r8_functor_smuggling;
          Alcotest.test_case "pool capture race" `Quick test_r9_pool_capture;
          Alcotest.test_case "transitive raise chain" `Quick test_r10_transitive_raise;
          Alcotest.test_case "mutual recursion fixpoint" `Quick test_fixpoint_mutual_recursion;
          Alcotest.test_case "seed suppression counted" `Quick test_seed_suppression_counted;
        ] );
      ("cli", [ Alcotest.test_case "exit codes" `Quick test_cli_exit ]);
      ("tree", [ Alcotest.test_case "lint-clean" `Quick test_tree_clean ]);
    ]
