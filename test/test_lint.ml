(* Tests for fruitlint (tools/lint): each rule R1-R4 against positive and
   negative fixture files, suppression comments, the CLI exit code, and a
   final check that the real tree is lint-clean. *)

module Lint = Fruitlint_lib.Lint

let fx sub = Filename.concat "fixtures" sub
let summarize = List.map (fun (d : Lint.diag) -> (d.file, d.line, Lint.rule_name d.rule))

let check_diags name expected diags =
  Alcotest.(check (list (triple string int string))) name expected (summarize diags)

(* --- R1: determinism ------------------------------------------------- *)

let test_r1_fires () =
  let file = fx "lib/sim/r1_bad.ml" in
  check_diags "every nondeterministic use is flagged"
    [ (file, 2, "R1"); (file, 3, "R1"); (file, 4, "R1"); (file, 5, "R1"); (file, 6, "R1") ]
    (Lint.lint_files ~only:[ Lint.R1 ] [ file ])

let test_r1_clean () =
  check_diags "seeded streams, benign Sys, suppressions pass" []
    (Lint.lint_files ~only:[ Lint.R1 ] [ fx "lib/sim/r1_ok.ml" ])

let test_r1_allowlist () =
  (* The one blessed randomness source would trip R1 on its own content
     (it *is* about random state), so the allowlist must cover it. *)
  check_diags "lib/util/rng.ml is allowlisted" []
    (Lint.lint_source ~only:[ Lint.R1 ] ~path:"lib/util/rng.ml"
       "let nondeterministic () = Random.bits ()")

(* --- R2: polymorphic compare ----------------------------------------- *)

let test_r2_fires () =
  let file = fx "lib/chain/r2_bad.ml" in
  check_diags "=, <>, compare, ==, Stdlib.compare all flagged"
    [ (file, 2, "R2"); (file, 3, "R2"); (file, 4, "R2"); (file, 5, "R2"); (file, 6, "R2") ]
    (Lint.lint_files ~only:[ Lint.R2 ] [ file ])

let test_r2_clean () =
  check_diags "typed equality and suppression pass" []
    (Lint.lint_files ~only:[ Lint.R2 ] [ fx "lib/chain/r2_ok.ml" ])

let test_r2_scoped () =
  check_diags "poly compare outside chain/crypto/core/net is allowed" []
    (Lint.lint_files ~only:[ Lint.R2 ] [ fx "lib/util/r2_elsewhere.ml" ])

let test_r2_net () =
  (* Envelope ordering is the delivery-determinism contract, so lib/net is
     in scope for R2 like the digest-bearing directories. *)
  let file = fx "lib/net/r2_bad.ml" in
  check_diags "poly compare in lib/net is flagged"
    [ (file, 2, "R2"); (file, 3, "R2"); (file, 4, "R2"); (file, 5, "R2"); (file, 6, "R2") ]
    (Lint.lint_files ~only:[ Lint.R2 ] [ file ])

(* --- R3: total validation -------------------------------------------- *)

let test_r3_fires () =
  let file = fx "lib/chain/validate.ml" in
  check_diags "failwith, raise, assert, invalid_arg all flagged"
    [ (file, 2, "R3"); (file, 3, "R3"); (file, 4, "R3"); (file, 5, "R3") ]
    (Lint.lint_files ~only:[ Lint.R3 ] [ file ])

let test_r3_scoped () =
  check_diags "raising outside the hot-path files is allowed" []
    (Lint.lint_files ~only:[ Lint.R3 ] [ fx "lib/chain/codec_helpers.ml" ])

let test_r3_clean () =
  check_diags "result-returning hot path passes" []
    (Lint.lint_files ~only:[ Lint.R3 ] [ fx "lib/core/extract.ml" ])

(* --- R4: interface completeness -------------------------------------- *)

let test_r4 () =
  check_diags "only the lib/ unit without an .mli is flagged"
    [ (fx "r4/lib/missing_mli.ml", 1, "R4") ]
    (Lint.lint_files ~only:[ Lint.R4 ] [ fx "r4" ])

(* --- R5: concurrency confinement -------------------------------------- *)

let test_r5_fires () =
  let file = fx "lib/sim/r5_bad.ml" in
  check_diags "Domain, Atomic, Mutex, Condition, Stdlib.Domain all flagged"
    [ (file, 2, "R5"); (file, 3, "R5"); (file, 4, "R5"); (file, 5, "R5"); (file, 6, "R5") ]
    (Lint.lint_files ~only:[ Lint.R5 ] [ file ])

let test_r5_clean () =
  check_diags "pool-mediated parallelism and suppression pass" []
    (Lint.lint_files ~only:[ Lint.R5 ] [ fx "lib/sim/r5_ok.ml" ])

let test_r5_allowlist () =
  (* The worker pool is the one blessed home for concurrency primitives. *)
  check_diags "lib/util/pool.ml is allowlisted" []
    (Lint.lint_source ~only:[ Lint.R5 ] ~path:"lib/util/pool.ml"
       "let d = Domain.spawn (fun () -> Atomic.make 0)")

let test_r5_module_alias () =
  (* The module_expr path: [module D = Domain] smuggles the primitive in. *)
  Alcotest.(check (list string)) "module alias is flagged" [ "R5" ]
    (List.map
       (fun (d : Lint.diag) -> Lint.rule_name d.rule)
       (Lint.lint_source ~only:[ Lint.R5 ] ~path:"lib/sim/x.ml" "module D = Domain"))

(* --- R6: clock confinement -------------------------------------------- *)

let test_r6_fires () =
  let file = fx "lib/sim/r6_bad.ml" in
  check_diags "gettimeofday, Sys.time, Unix.time, gmtime, Stdlib.Sys.time all flagged"
    [ (file, 2, "R6"); (file, 3, "R6"); (file, 4, "R6"); (file, 5, "R6"); (file, 6, "R6") ]
    (Lint.lint_files ~only:[ Lint.R6 ] [ file ])

let test_r6_clean () =
  check_diags "Obs.Clock use, benign Sys access, and suppressions pass" []
    (Lint.lint_files ~only:[ Lint.R6 ] [ fx "lib/sim/r6_ok.ml" ])

let test_r6_allowlist () =
  (* The clock module is the one blessed home for wall-clock reads. *)
  check_diags "lib/obs/clock.ml is allowlisted" []
    (Lint.lint_source ~only:[ Lint.R6 ] ~path:"lib/obs/clock.ml"
       "let now_s () = Unix.gettimeofday ()\nlet cpu_s () = Sys.time ()")

let test_r6_distinct_from_r1 () =
  (* R6 is narrower than R1: Unix.getenv leaks system state (R1) but is not
     a clock read, while both rules flag Unix.gettimeofday outside their
     allowlists. *)
  let diags path content only = Lint.lint_source ~only ~path content in
  Alcotest.(check (list string)) "getenv is R1 but not R6" [ "R1" ]
    (List.map
       (fun (d : Lint.diag) -> Lint.rule_name d.rule)
       (diags "lib/sim/x.ml" "let home () = Unix.getenv \"HOME\"" [ Lint.R1; Lint.R6 ]));
  Alcotest.(check (list string)) "gettimeofday is both R1 and R6" [ "R1"; "R6" ]
    (List.map
       (fun (d : Lint.diag) -> Lint.rule_name d.rule)
       (diags "lib/sim/x.ml" "let now () = Unix.gettimeofday ()" [ Lint.R1; Lint.R6 ]))

(* --- R7: input confinement --------------------------------------------- *)

let test_r7_fires () =
  let file = fx "lib/sim/r7_bad.ml" in
  check_diags "open_in, open_in_bin, open_in_gen, In_channel, Stdlib.open_in all flagged"
    [ (file, 2, "R7"); (file, 3, "R7"); (file, 4, "R7"); (file, 5, "R7"); (file, 6, "R7") ]
    (Lint.lint_files ~only:[ Lint.R7 ] [ file ])

let test_r7_clean () =
  check_diags "parsing provided contents, write channels, suppressions pass" []
    (Lint.lint_files ~only:[ Lint.R7 ] [ fx "lib/sim/r7_ok.ml" ])

let test_r7_allowlist () =
  (* The scenario loader and the snapshot store are the blessed readers. *)
  check_diags "lib/scenario/loader.ml is allowlisted" []
    (Lint.lint_source ~only:[ Lint.R7 ] ~path:"lib/scenario/loader.ml"
       "let read path = open_in_bin path");
  check_diags "lib/chain/snapshot.ml is allowlisted" []
    (Lint.lint_source ~only:[ Lint.R7 ] ~path:"lib/chain/snapshot.ml"
       "let read path = open_in_bin path")

let test_r7_scoped_to_lib () =
  (* CLIs read files for a living; the rule only guards the libraries. *)
  check_diags "open_in outside lib/ is allowed" []
    (Lint.lint_source ~only:[ Lint.R7 ] ~path:"bin/main.ml"
       "let read path = open_in_bin path")

(* --- Suppression parsing --------------------------------------------- *)

let test_suppression_is_per_rule () =
  (* An R1 suppression must not silence an R2 violation on the same line. *)
  let diags =
    Lint.lint_source ~only:Lint.all_rules ~path:"lib/chain/x.ml"
      "(* fruitlint: allow R1 *)\nlet f a b = a = b\n"
  in
  Alcotest.(check (list string)) "R2 survives an R1 suppression" [ "R2" ]
    (List.map (fun (d : Lint.diag) -> Lint.rule_name d.rule) diags)

let test_suppression_multi_rule () =
  let diags =
    Lint.lint_source ~only:Lint.all_rules ~path:"lib/chain/x.ml"
      "(* fruitlint: allow R1 R2 *)\nlet f a b = Hashtbl.hash a = b\n"
  in
  check_diags "one comment can allow several rules" [] diags

(* --- CLI exit codes --------------------------------------------------- *)

let exe = Filename.concat ".." (Filename.concat "tools" (Filename.concat "lint" "main.exe"))

let run_cli args =
  match Sys.command (Filename.quote_command exe args ~stdout:Filename.null) with
  | code -> code

let test_cli_exit () =
  if not (Sys.file_exists exe) then () (* exe not staged in this runner; library tests cover the rules *)
  else begin
    Alcotest.(check int) "violations exit 1" 1
      (run_cli [ "--only"; "R1"; fx "lib/sim/r1_bad.ml" ]);
    Alcotest.(check int) "clean input exits 0" 0
      (run_cli [ "--only"; "R1"; fx "lib/sim/r1_ok.ml" ]);
    Alcotest.(check int) "unknown path exits 2" 2 (run_cli [ fx "no/such/path.ml" ])
  end

(* --- The real tree ----------------------------------------------------- *)

let test_tree_clean () =
  (* Tests run from _build/default/test; the build has already copied the
     sources of every built directory next to it. *)
  let roots =
    List.filter Sys.file_exists
      [ Filename.parent_dir_name ^ "/lib";
        Filename.parent_dir_name ^ "/bin";
        Filename.parent_dir_name ^ "/bench" ]
  in
  match roots with
  | [] -> Alcotest.skip ()
  | roots -> check_diags "lib/, bin/, bench/ are lint-clean" [] (Lint.lint_files roots)

let () =
  Alcotest.run "lint"
    [
      ( "R1 determinism",
        [
          Alcotest.test_case "fires" `Quick test_r1_fires;
          Alcotest.test_case "clean" `Quick test_r1_clean;
          Alcotest.test_case "allowlist" `Quick test_r1_allowlist;
        ] );
      ( "R2 poly compare",
        [
          Alcotest.test_case "fires" `Quick test_r2_fires;
          Alcotest.test_case "clean" `Quick test_r2_clean;
          Alcotest.test_case "scoped" `Quick test_r2_scoped;
          Alcotest.test_case "net in scope" `Quick test_r2_net;
        ] );
      ( "R3 totality",
        [
          Alcotest.test_case "fires" `Quick test_r3_fires;
          Alcotest.test_case "scoped" `Quick test_r3_scoped;
          Alcotest.test_case "clean" `Quick test_r3_clean;
        ] );
      ("R4 interfaces", [ Alcotest.test_case "missing mli" `Quick test_r4 ]);
      ( "R5 concurrency confinement",
        [
          Alcotest.test_case "fires" `Quick test_r5_fires;
          Alcotest.test_case "clean" `Quick test_r5_clean;
          Alcotest.test_case "allowlist" `Quick test_r5_allowlist;
          Alcotest.test_case "module alias" `Quick test_r5_module_alias;
        ] );
      ( "R6 clock confinement",
        [
          Alcotest.test_case "fires" `Quick test_r6_fires;
          Alcotest.test_case "clean" `Quick test_r6_clean;
          Alcotest.test_case "allowlist" `Quick test_r6_allowlist;
          Alcotest.test_case "distinct from R1" `Quick test_r6_distinct_from_r1;
        ] );
      ( "R7 input confinement",
        [
          Alcotest.test_case "fires" `Quick test_r7_fires;
          Alcotest.test_case "clean" `Quick test_r7_clean;
          Alcotest.test_case "allowlist" `Quick test_r7_allowlist;
          Alcotest.test_case "scoped to lib" `Quick test_r7_scoped_to_lib;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "per rule" `Quick test_suppression_is_per_rule;
          Alcotest.test_case "multi rule" `Quick test_suppression_multi_rule;
        ] );
      ("cli", [ Alcotest.test_case "exit codes" `Quick test_cli_exit ]);
      ("tree", [ Alcotest.test_case "lint-clean" `Quick test_tree_clean ]);
    ]
