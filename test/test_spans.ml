(* fruittrace span suite.

   Three contracts from the observability layer (lib/obs/span.ml +
   lib/sim/lifecycle.ml):

   1. Span-bearing traces are jobs-invariant. test_determinism.ml already
      pins trace byte-identity for the scoped experiments; this suite adds
      the sharper claim for E01 and E19 that the traces actually CARRY
      lifecycle spans (a silent `Lifecycle.create` regression to `None`
      would keep byte-identity while deleting the feature).

   2. Exact and sparse engines emit the same span schema: for every event
      name x entity combination, the sorted field-key set of the emitted
      JSON objects is identical across planes, and both planes emit fruit
      and block spans. The planes cannot agree on *values* (different
      randomness consumption), so the schema is the interface the offline
      analyzer depends on.

   3. The analyzer is a pure function of the trace bytes: summarizing the
      same lines twice is byte-identical, and `Analyze.diff` of a summary
      with itself is empty — the property the CI jobs-axis `--diff` check
      builds on. *)

module Exp = Fruitchain_experiments.Exp
module Registry = Fruitchain_experiments.Registry
module Runs = Fruitchain_experiments.Runs
module Pool = Fruitchain_util.Pool
module Metrics = Fruitchain_obs.Metrics
module Tracer = Fruitchain_obs.Tracer
module Scope = Fruitchain_obs.Scope
module Json = Fruitchain_obs.Json
module Analyze = Fruitchain_obs.Analyze
module Config = Fruitchain_sim.Config
module Engine = Fruitchain_sim.Engine
module Sparse = Fruitchain_sim.Sparse

let observe ~jobs (module E : Exp.EXPERIMENT) =
  Pool.set_default_jobs jobs;
  let tracer = Tracer.buffer () in
  Pool.set_scope (Scope.make ~metrics:(Metrics.create ()) ~tracer ());
  Fun.protect
    ~finally:(fun () -> Pool.set_scope Scope.null)
    (fun () -> ignore (E.run ~scale:Exp.Quick ()));
  Tracer.lines tracer

let count_ev name lines =
  List.length
    (List.filter
       (fun line ->
         match Json.of_string line with
         | Ok doc -> (
             match Option.bind (Json.member "ev" doc) Json.to_str with
             | Some ev -> String.equal ev name
             | None -> false)
         | Error _ -> false)
       lines)

let experiment id =
  match Registry.find id with
  | Some e -> e
  | None -> Alcotest.failf "experiment %s must be registered" id

let test_span_bearing_invariance id () =
  let (module E) = experiment id in
  let seq = observe ~jobs:1 (module E) in
  let par = observe ~jobs:4 (module E) in
  Alcotest.(check string)
    (id ^ ": span-bearing traces at --jobs 1 and --jobs 4 are byte-identical")
    (String.concat "\n" seq) (String.concat "\n" par);
  Alcotest.(check bool)
    (id ^ ": trace carries span.open events")
    true
    (count_ev "span.open" seq > 0);
  Alcotest.(check bool)
    (id ^ ": every opened span is closed")
    true
    (count_ev "span.close" seq >= count_ev "span.open" seq)

(* --- Exact vs sparse schema agreement --------------------------------- *)

let config ~engine =
  Config.make ~protocol:Config.Fruitchain ~engine ~n:12 ~rho:0.25 ~delta:2
    ~rounds:3_000 ~seed:5L
    ~params:(Exp.default_params ~q:10.0 ~p:0.004 ())
    ()

let trace_lines ~engine =
  let tracer = Tracer.buffer () in
  let scope = Scope.make ~metrics:(Metrics.create ()) ~tracer () in
  (match engine with
  | Config.Exact ->
      ignore
        (Engine.run ~config:(config ~engine) ~strategy:Runs.honest_coalition ~scope ())
  | Config.Sparse -> ignore (Sparse.run ~config:(config ~engine) ~scope ()));
  Tracer.lines tracer

(* (event, entity) -> sorted field-key set, e.g. ("span.close", "fruit") ->
   ["ev"; "entity"; "id"; "mined"; ...]. *)
let span_schema lines =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error _ -> ()
      | Ok doc -> (
          match
            ( Option.bind (Json.member "ev" doc) Json.to_str,
              Option.bind (Json.member "entity" doc) Json.to_str,
              Json.to_obj doc )
          with
          | Some ev, Some entity, Some fields
            when String.equal ev "span.open" || String.equal ev "span.close" ->
              let keys = List.sort String.compare (List.map fst fields) in
              (match Hashtbl.find_opt tbl (ev, entity) with
              | None -> Hashtbl.replace tbl (ev, entity) keys
              | Some prior ->
                  Alcotest.(check (list string))
                    (Printf.sprintf "%s/%s field keys are uniform within one trace" ev
                       entity)
                    prior keys)
          | _ -> ()))
    lines;
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let test_engine_schema_agreement () =
  let exact = span_schema (trace_lines ~engine:Config.Exact) in
  let sparse = span_schema (trace_lines ~engine:Config.Sparse) in
  (* Reorg spans are a legitimate divergence: the sparse plane mines one
     converged canonical chain (DESIGN.md §14), so it can never emit one.
     Every combination BOTH planes emit must agree field-for-field. *)
  List.iter
    (fun ((ev, entity), exact_keys) ->
      match List.assoc_opt (ev, entity) sparse with
      | None -> ()
      | Some sparse_keys ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s schema agrees across planes" ev entity)
            exact_keys sparse_keys)
    exact;
  List.iter
    (fun ((ev, entity), _) ->
      Alcotest.(check bool)
        (Printf.sprintf "sparse %s/%s also exists on the exact plane" ev entity)
        true
        (List.mem_assoc (ev, entity) exact))
    sparse;
  List.iter
    (fun entity ->
      List.iter
        (fun schema ->
          Alcotest.(check bool)
            (Printf.sprintf "both planes emit %s span closes" entity)
            true
            (List.mem_assoc ("span.close", entity) schema))
        [ exact; sparse ])
    [ "fruit"; "block" ];
  Alcotest.(check bool) "the sparse plane emits no reorg spans" false
    (List.mem_assoc ("span.close", "reorg") sparse)

(* --- Analyzer purity --------------------------------------------------- *)

let test_analyze_purity () =
  let lines = trace_lines ~engine:Config.Exact in
  let first = Analyze.summarize lines and second = Analyze.summarize lines in
  Alcotest.(check string) "summarize is a pure function of the lines"
    (Json.to_string first) (Json.to_string second);
  Alcotest.(check (list string)) "diff of a summary with itself is empty" []
    (Analyze.diff first second);
  Alcotest.(check string) "render derives from the summary deterministically"
    (Analyze.render first) (Analyze.render second)

let () =
  Alcotest.run "spans"
    [
      ( "jobs invariance of span-bearing traces",
        [
          Alcotest.test_case "E01" `Slow (test_span_bearing_invariance "E01");
          Alcotest.test_case "E19" `Slow (test_span_bearing_invariance "E19");
        ] );
      ( "engine schema agreement",
        [ Alcotest.test_case "exact == sparse" `Slow test_engine_schema_agreement ] );
      ( "analyzer purity",
        [ Alcotest.test_case "summarize/diff/render" `Quick test_analyze_purity ] );
    ]
