(* Golden-table generator: prints the rendered Quick-scale outcome of one
   experiment, exactly as bench/main.exe renders it. Used by the runtest
   diff rules in test/dune against the snapshots in test/fixtures/golden/;
   on an intentional table change, `dune promote` refreshes the snapshot.
   Runs at jobs=2 so every golden check also exercises the parallel path —
   by the determinism contract (test_determinism.ml) the bytes are the same
   at any worker count. *)

module Exp = Fruitchain_experiments.Exp
module Registry = Fruitchain_experiments.Registry

let () =
  match Array.to_list Sys.argv with
  | [ _; id ] -> (
      Fruitchain_util.Pool.set_default_jobs 2;
      match Registry.find id with
      | None ->
          prerr_endline ("golden_gen: unknown experiment " ^ id);
          exit 2
      | Some (module E) ->
          print_string (Format.asprintf "%a" Exp.print (E.run ~scale:Exp.Quick ())))
  | _ ->
      prerr_endline "usage: golden_gen EXX";
      exit 2
