(* Golden-table generator: prints the rendered Quick-scale outcome of one
   experiment, exactly as bench/main.exe renders it. Used by the runtest
   diff rules in test/dune against the snapshots in test/fixtures/golden/;
   on an intentional table change, `dune promote` refreshes the snapshot.
   Runs at jobs=2 so every golden check also exercises the parallel path —
   by the determinism contract (test_determinism.ml) the bytes are the same
   at any worker count. *)

module Exp = Fruitchain_experiments.Exp
module Registry = Fruitchain_experiments.Registry
module Scenario = Fruitchain_scenario.Scenario
module Loader = Fruitchain_scenario.Loader
module Driver = Fruitchain_scenario.Driver
module Pool = Fruitchain_util.Pool
module Metrics = Fruitchain_obs.Metrics
module Scope = Fruitchain_obs.Scope

(* `golden_gen scenario FILE` pins the canonical re-serialization and the
   trial table; `golden_gen scenario-metrics FILE` pins the golden metric
   dump of the same run. Both at jobs=2, like the experiment goldens. *)
let scenario_golden ~dump file =
  match Loader.load file with
  | Error diags ->
      List.iter (fun d -> prerr_endline (Loader.to_string_diag d)) diags;
      exit 2
  | Ok s ->
      let registry = Metrics.create () in
      Pool.set_scope (Scope.make ~metrics:registry ());
      let trials =
        Fun.protect
          ~finally:(fun () -> Pool.set_scope Scope.null)
          (fun () -> Driver.run_trials s)
      in
      if dump then print_endline (Metrics.dump registry)
      else begin
        print_endline (Scenario.to_string s);
        print_string (Fruitchain_util.Table.to_string (Driver.table s trials))
      end

(* `golden_gen analyze FILE` pins the fruittrace analyzer's rendering of a
   committed mini-trace: any drift in the span schema, the percentile
   arithmetic, or the report layout shows up as a golden diff. *)
let analyze_golden file =
  let ic = open_in_bin file in
  let lines = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          lines := input_line ic :: !lines
        done
      with End_of_file -> ());
  print_string (Fruitchain_obs.Analyze.render (Fruitchain_obs.Analyze.summarize (List.rev !lines)))

let () =
  match Array.to_list Sys.argv with
  | [ _; "scenario"; file ] ->
      Pool.set_default_jobs 2;
      scenario_golden ~dump:false file
  | [ _; "scenario-metrics"; file ] ->
      Pool.set_default_jobs 2;
      scenario_golden ~dump:true file
  | [ _; "analyze"; file ] -> analyze_golden file
  | [ _; id ] -> (
      Pool.set_default_jobs 2;
      match Registry.find id with
      | None ->
          prerr_endline ("golden_gen: unknown experiment " ^ id);
          exit 2
      | Some (module E) ->
          print_string (Format.asprintf "%a" Exp.print (E.run ~scale:Exp.Quick ())))
  | _ ->
      prerr_endline
        "usage: golden_gen EXX | golden_gen scenario[-metrics] FILE | golden_gen analyze FILE";
      exit 2
