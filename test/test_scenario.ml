(* Tests for lib/scenario (fruitstorm): validation diagnostics (never
   exceptions), canonical JSON round-trips, loader line placement, the pure
   fault queries behind the delivery policy, and a driver smoke run. *)

module Json = Fruitchain_obs.Json
module Scenario = Fruitchain_scenario.Scenario
module Loader = Fruitchain_scenario.Loader
module Driver = Fruitchain_scenario.Driver

let codes = function
  | Ok _ -> []
  | Error diags -> List.map (fun (d : Scenario.diag) -> d.Scenario.code) diags

let check_codes name expected result =
  Alcotest.(check (list string)) name expected (codes result)

let groups_of_halves n =
  [ List.init (n / 2) (fun i -> i); List.init (n - (n / 2)) (fun i -> (n / 2) + i) ]

let partition ~from ~until ~n = Scenario.Partition { from; until; groups = groups_of_halves n }

let valid_events =
  [
    partition ~from:100 ~until:200 ~n:10;
    Scenario.Delay_spike { from = 300; until = 400; delta' = 8 };
    Scenario.Eclipse { from = 500; until = 600; party = 3 };
    Scenario.Churn { from = 700; until = 800; party = 1 };
    Scenario.Gossip_toggle { at = 50; on = true };
    Scenario.Workload_burst { from = 10; until = 40; tag = "t" };
  ]

let make ?(n = 10) ?(rounds = 1000) ?rho events =
  Scenario.make ~name:"t" ~n ~rounds ?rho ~events ()

(* --- validation -------------------------------------------------------- *)

let test_valid () =
  match make valid_events with
  | Ok _ -> ()
  | Error ds ->
      Alcotest.failf "expected valid: %s"
        (String.concat "; "
           (List.map (fun d -> Format.asprintf "%a" Scenario.pp_diag d) ds))

let test_s1_scenario_level () =
  check_codes "bad n" [ "S1" ] (Scenario.make ~name:"t" ~n:0 ~events:[] ());
  check_codes "empty name" [ "S1" ] (Scenario.make ~name:"" ~events:[] ());
  check_codes "pf > 1" [ "S1" ] (Scenario.make ~name:"t" ~p:0.5 ~q:10.0 ~events:[] ())

let test_s2_windows () =
  check_codes "heal before cut" [ "S2" ] (make [ partition ~from:200 ~until:100 ~n:10 ]);
  check_codes "negative start" [ "S2" ]
    (make [ Scenario.Eclipse { from = -1; until = 10; party = 0 } ]);
  check_codes "past end of run" [ "S2" ]
    (make [ Scenario.Delay_spike { from = 100; until = 2000; delta' = 8 } ]);
  check_codes "toggle out of range" [ "S2" ]
    (make [ Scenario.Gossip_toggle { at = 1000; on = true } ])

let test_s3_parties () =
  check_codes "party out of range" [ "S3" ]
    (make [ Scenario.Eclipse { from = 1; until = 2; party = 10 } ]);
  check_codes "one group" [ "S3" ]
    (make [ Scenario.Partition { from = 1; until = 2; groups = [ List.init 10 Fun.id ] } ]);
  check_codes "overlapping groups" [ "S3" ]
    (make
       [
         Scenario.Partition
           { from = 1; until = 2; groups = [ [ 0; 1; 2; 3; 4; 5 ]; [ 5; 6; 7; 8; 9 ] ] };
       ]);
  check_codes "not covering" [ "S3" ]
    (make [ Scenario.Partition { from = 1; until = 2; groups = [ [ 0; 1 ]; [ 2; 3 ] ] } ])

let test_s4_duplicates_and_overlaps () =
  let e = partition ~from:100 ~until:200 ~n:10 in
  check_codes "exact duplicate" [ "S4" ] (make [ e; e ]);
  check_codes "overlapping partitions" [ "S4" ]
    (make [ partition ~from:100 ~until:200 ~n:10; partition ~from:150 ~until:250 ~n:10 ]);
  check_codes "same-party eclipse overlap" [ "S4" ]
    (make
       [
         Scenario.Eclipse { from = 100; until = 200; party = 2 };
         Scenario.Eclipse { from = 150; until = 250; party = 2 };
       ]);
  (match make [ Scenario.Eclipse { from = 100; until = 200; party = 2 };
                Scenario.Eclipse { from = 150; until = 250; party = 3 } ] with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "distinct-party eclipse overlap must be legal")

let test_s5_contradictions () =
  check_codes "opposing toggles" [ "S5" ]
    (make
       [
         Scenario.Gossip_toggle { at = 10; on = true };
         Scenario.Gossip_toggle { at = 10; on = false };
       ]);
  check_codes "same-party churn overlap" [ "S5" ]
    (make
       [
         Scenario.Churn { from = 100; until = 300; party = 1 };
         Scenario.Churn { from = 200; until = 400; party = 1 };
       ]);
  check_codes "churning a statically corrupt party" [ "S5" ]
    (make ~rho:0.2 [ Scenario.Churn { from = 100; until = 300; party = 9 } ])

let test_s6_spike () =
  check_codes "spike must widen Delta" [ "S6" ]
    (make [ Scenario.Delay_spike { from = 1; until = 2; delta' = 2 } ])

(* --- canonical JSON ---------------------------------------------------- *)

let test_roundtrip () =
  match make valid_events with
  | Error _ -> Alcotest.fail "fixture invalid"
  | Ok s -> (
      let bytes = Scenario.to_string s in
      match Scenario.of_string bytes with
      | Error _ -> Alcotest.fail "canonical form must re-parse"
      | Ok s' ->
          Alcotest.(check string) "to_string is idempotent over of_string" bytes
            (Scenario.to_string s');
          Alcotest.(check int) "events survive" (List.length s.Scenario.events)
            (List.length s'.Scenario.events))

let test_canonical_sorts () =
  let a = Scenario.Eclipse { from = 500; until = 600; party = 3 } in
  let b = Scenario.Gossip_toggle { at = 50; on = true } in
  match (make [ a; b ], make [ b; a ]) with
  | Ok s1, Ok s2 ->
      Alcotest.(check string) "event order is canonicalized away"
        (Scenario.to_string s1) (Scenario.to_string s2)
  | _ -> Alcotest.fail "fixtures invalid"

let test_unknown_fields_rejected () =
  check_codes "unknown config field" [ "S1" ]
    (Scenario.of_string {|{"name":"t","config":{"nn":10},"events":[]}|});
  check_codes "unknown event kind" [ "S1" ]
    (Scenario.of_string {|{"name":"t","events":[{"kind":"partiton"}]}|});
  check_codes "unknown event field" [ "S1" ]
    (Scenario.of_string
       {|{"name":"t","events":[{"kind":"eclipse","from":1,"until":2,"party":0,"parti":0}]}|})

(* --- loader ------------------------------------------------------------ *)

let loader_lines source =
  match Loader.of_source ~file:"x.json" source with
  | Ok _ -> []
  | Error ds -> List.map (fun (d : Loader.diag) -> (d.Loader.line, d.Loader.code)) ds

let test_loader_places_events () =
  let source =
    {|{
  "name": "t",
  "config": { "n": 10, "rounds": 1000 },
  "events": [
    { "kind": "eclipse", "from": 1, "until": 2, "party": 0 },
    { "kind": "eclipse", "from": 1, "until": 2, "party": 99 },
    { "kind": "eclipse", "from": 1, "until": 2, "party": 0 }
  ]
}|}
  in
  Alcotest.(check (list (pair int string)))
    "diags point at the offending event lines"
    [ (6, "S3"); (7, "S4") ]
    (loader_lines source)

let test_loader_never_raises () =
  (* The bugfix-sweep contract: duplicate/contradictory events are
     diagnostics with positions, not exceptions. *)
  let source =
    {|{
  "name": "t",
  "config": { "n": 10, "rounds": 1000 },
  "events": [
    { "kind": "gossip_toggle", "at": 5, "on": true },
    { "kind": "gossip_toggle", "at": 5, "on": false }
  ]
}|}
  in
  Alcotest.(check (list (pair int string))) "contradiction is a placed diag"
    [ (6, "S5") ] (loader_lines source)

let test_loader_parse_error_position () =
  match Loader.of_source ~file:"x.json" "{\n  \"name\": oops\n}" with
  | Ok _ -> Alcotest.fail "must not parse"
  | Error [ d ] ->
      Alcotest.(check string) "code" "S1" d.Loader.code;
      Alcotest.(check int) "line" 2 d.Loader.line
  | Error _ -> Alcotest.fail "single parse diagnostic expected"

let test_loader_missing_file () =
  match Loader.load "no/such/scenario.json" with
  | Ok _ -> Alcotest.fail "must not load"
  | Error [ d ] -> Alcotest.(check string) "code" "S0" d.Loader.code
  | Error _ -> Alcotest.fail "single S0 expected"

let test_loader_fixture () =
  match Loader.load "fixtures/scenarios/partition_small.json" with
  | Ok s ->
      Alcotest.(check string) "name" "partition-small" s.Scenario.name;
      Alcotest.(check int) "trials" 2 s.Scenario.trials;
      Alcotest.(check int) "events" 1 (List.length s.Scenario.events)
  | Error _ -> Alcotest.fail "shipped fixture must validate"

(* --- fault queries ----------------------------------------------------- *)

let fault_fixture () =
  match
    make ~n:10 ~rounds:1000
      [
        partition ~from:100 ~until:200 ~n:10;
        Scenario.Delay_spike { from = 300; until = 400; delta' = 8 };
        Scenario.Eclipse { from = 500; until = 600; party = 3 };
      ]
  with
  | Ok s -> s
  | Error _ -> Alcotest.fail "fixture invalid"

let test_partition_holds_to_heal () =
  let s = fault_fixture () in
  (* Cross-group send at round 150 resolved to 152: re-sent at heal 200,
     arrives 202. Same-group delivery is untouched. *)
  Alcotest.(check int) "cross-group held" 202
    (Scenario.delivery_round s ~now:150 ~sender:0 ~recipient:7 ~round:152);
  Alcotest.(check int) "same-group unaffected" 152
    (Scenario.delivery_round s ~now:150 ~sender:0 ~recipient:4 ~round:152);
  Alcotest.(check int) "outside the window unaffected" 252
    (Scenario.delivery_round s ~now:250 ~sender:0 ~recipient:7 ~round:252);
  Alcotest.(check int) "adversary bypasses the cut" 152
    (Scenario.delivery_round s ~now:150 ~sender:(-1) ~recipient:7 ~round:152)

let test_spike_widens () =
  let s = fault_fixture () in
  (* delta' = 8 over delta = 2 adds 6 rounds to whatever the schedule chose. *)
  Alcotest.(check int) "spike extra" 6 (Scenario.spike_extra s ~round:350);
  Alcotest.(check int) "no spike outside" 0 (Scenario.spike_extra s ~round:450);
  Alcotest.(check int) "delivery shifted" (352 + 6)
    (Scenario.delivery_round s ~now:350 ~sender:0 ~recipient:7 ~round:352)

let test_eclipse_isolates () =
  let s = fault_fixture () in
  Alcotest.(check bool) "victim separated from peers" true
    (Scenario.separated s ~round:550 3 8);
  Alcotest.(check bool) "both directions" true (Scenario.separated s ~round:550 8 3);
  Alcotest.(check bool) "peers unaffected" false (Scenario.separated s ~round:550 4 8);
  Alcotest.(check int) "victim's send held to heal" 602
    (Scenario.delivery_round s ~now:550 ~sender:3 ~recipient:8 ~round:552)

let test_fault_predicates () =
  let s = fault_fixture () in
  Alcotest.(check bool) "partition window faulted" true
    (Scenario.delivery_faulted s ~round:150);
  Alcotest.(check bool) "gap not faulted" false (Scenario.delivery_faulted s ~round:250);
  Alcotest.(check int) "one active fault" 1 (Scenario.active_faults s ~round:350);
  Alcotest.(check int) "none active" 0 (Scenario.active_faults s ~round:950)

let test_desugarings () =
  match
    make ~n:10 ~rounds:1000
      [
        Scenario.Churn { from = 100; until = 300; party = 1 };
        Scenario.Churn { from = 400; until = 1000; party = 2 };
        Scenario.Gossip_toggle { at = 10; on = true };
      ]
  with
  | Error _ -> Alcotest.fail "fixture invalid"
  | Ok s ->
      let corrupt, uncorrupt = Scenario.churn_schedules s in
      Alcotest.(check (list (pair int int))) "corruptions"
        [ (400, 2); (100, 1) ] corrupt;
      Alcotest.(check (list (pair int int)))
        "churn to the end yields no uncorruption" [ (300, 1) ] uncorrupt;
      Alcotest.(check (list (pair int bool))) "gossip schedule" [ (10, true) ]
        (Scenario.gossip_schedule s)

(* --- driver smoke ------------------------------------------------------ *)

let test_driver_smoke () =
  match
    Scenario.make ~name:"smoke" ~n:6 ~rounds:400 ~seed:3L ~trials:2
      ~events:
        [
          Scenario.Gossip_toggle { at = 50; on = true };
          Scenario.Workload_burst { from = 100; until = 200; tag = "w" };
          Scenario.Partition
            { from = 150; until = 250; groups = [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] };
        ]
      ()
  with
  | Error _ -> Alcotest.fail "smoke scenario invalid"
  | Ok s ->
      let trials = Driver.run_trials ~jobs:2 s in
      Alcotest.(check int) "one result per trial" 2 (List.length trials);
      List.iter
        (fun (t : Driver.trial) ->
          Alcotest.(check bool) "chain grew" true (t.Driver.blocks > 1))
        trials;
      let rendered = Fruitchain_util.Table.to_string (Driver.table s trials) in
      Alcotest.(check bool) "table renders" true (String.length rendered > 40)

let () =
  Alcotest.run "scenario"
    [
      ( "validation",
        [
          Alcotest.test_case "valid timeline" `Quick test_valid;
          Alcotest.test_case "S1 scenario level" `Quick test_s1_scenario_level;
          Alcotest.test_case "S2 windows" `Quick test_s2_windows;
          Alcotest.test_case "S3 parties" `Quick test_s3_parties;
          Alcotest.test_case "S4 duplicates/overlaps" `Quick test_s4_duplicates_and_overlaps;
          Alcotest.test_case "S5 contradictions" `Quick test_s5_contradictions;
          Alcotest.test_case "S6 spike magnitude" `Quick test_s6_spike;
        ] );
      ( "canonical json",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "sorts events" `Quick test_canonical_sorts;
          Alcotest.test_case "unknown fields rejected" `Quick test_unknown_fields_rejected;
        ] );
      ( "loader",
        [
          Alcotest.test_case "places event diags" `Quick test_loader_places_events;
          Alcotest.test_case "never raises" `Quick test_loader_never_raises;
          Alcotest.test_case "parse error position" `Quick test_loader_parse_error_position;
          Alcotest.test_case "missing file" `Quick test_loader_missing_file;
          Alcotest.test_case "shipped fixture" `Quick test_loader_fixture;
        ] );
      ( "fault queries",
        [
          Alcotest.test_case "partition holds to heal" `Quick test_partition_holds_to_heal;
          Alcotest.test_case "spike widens" `Quick test_spike_widens;
          Alcotest.test_case "eclipse isolates" `Quick test_eclipse_isolates;
          Alcotest.test_case "predicates" `Quick test_fault_predicates;
          Alcotest.test_case "desugarings" `Quick test_desugarings;
        ] );
      ("driver", [ Alcotest.test_case "smoke" `Slow test_driver_smoke ]);
    ]
