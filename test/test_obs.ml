(* Tests for the fruitscope observability layer (Fruitchain_obs): canonical
   JSON, the metrics determinism contract (merge associativity /
   commutativity / partition-equivalence, via QCheck), tracer sinks, the
   growable Vec behind Sim.Trace, the 10⁵-event trace regression, and an
   instrumented engine smoke run. *)

module Json = Fruitchain_obs.Json
module Metrics = Fruitchain_obs.Metrics
module Tracer = Fruitchain_obs.Tracer
module Scope = Fruitchain_obs.Scope
module Report = Fruitchain_obs.Report
module Vec = Fruitchain_util.Vec
module Config = Fruitchain_sim.Config
module Trace = Fruitchain_sim.Trace
module Engine = Fruitchain_sim.Engine
module Params = Fruitchain_core.Params
module Types = Fruitchain_chain.Types
module Store = Fruitchain_chain.Store
module Hash = Fruitchain_crypto.Hash
module Delays = Fruitchain_adversary.Delays

(* --- Json --------------------------------------------------------------- *)

let test_json_canonical () =
  let doc =
    Json.Obj
      [
        ("b", Json.Int 2);
        ("a", Json.List [ Json.Null; Json.Bool true; Json.Str "x\"y\n" ]);
        ("f", Json.Float 1.5);
      ]
  in
  (* Field order is the order given (canonical = caller sorts), no spaces. *)
  Alcotest.(check string) "compact rendering"
    {|{"b":2,"a":[null,true,"x\"y\n"],"f":1.5}|} (Json.to_string doc)

let test_json_floats () =
  Alcotest.(check string) "integral float" "2.0" (Json.to_string (Json.Float 2.0));
  Alcotest.(check string) "non-finite is null" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string) "inf is null" "null" (Json.to_string (Json.Float infinity))

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("n", Json.Int (-42));
        ("s", Json.Str "caf\xc3\xa9 \t tab");
        ("l", Json.List [ Json.Int 1; Json.Obj [ ("k", Json.Bool false) ] ]);
        ("x", Json.Null);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok doc' ->
      Alcotest.(check string) "print-parse-print fixpoint" (Json.to_string doc)
        (Json.to_string doc')

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with Ok _ -> Alcotest.failf "accepted %S" s | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "tru";
  bad "1 2"

let test_json_accessors () =
  let doc = Json.Obj [ ("a", Json.Int 3); ("b", Json.Str "s") ] in
  Alcotest.(check (option int)) "member+to_int" (Some 3)
    (Option.bind (Json.member "a" doc) Json.to_int);
  Alcotest.(check (option string)) "member+to_str" (Some "s")
    (Option.bind (Json.member "b" doc) Json.to_str);
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (Json.member "zz" doc) Json.to_int);
  Alcotest.(check (option (float 0.0))) "int widens to float" (Some 3.0)
    (Option.bind (Json.member "a" doc) Json.to_float)

(* --- Vec ---------------------------------------------------------------- *)

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Alcotest.(check (list int)) "to_list chronological"
    (List.init 100 (fun i -> i * i))
    (Vec.to_list v);
  Alcotest.(check int) "fold"
    (List.fold_left ( + ) 0 (List.init 100 (fun i -> i * i)))
    (Vec.fold_left v ~init:0 ~f:( + ));
  Alcotest.check_raises "out of bounds" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 100));
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_vec_large () =
  let v = Vec.create () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    Vec.push v i
  done;
  Alcotest.(check int) "10^5 pushes" n (Vec.length v);
  Alcotest.(check int) "first" 0 (Vec.get v 0);
  Alcotest.(check int) "last" (n - 1) (Vec.get v (n - 1));
  let order_ok = ref true in
  let prev = ref (-1) in
  Vec.iter v ~f:(fun x ->
      if x <> !prev + 1 then order_ok := false;
      prev := x);
  Alcotest.(check bool) "iter is chronological" true !order_ok

(* --- Metrics ------------------------------------------------------------ *)

let test_metrics_instruments () =
  let m = Metrics.create () in
  let c = Metrics.counter m "runs" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check (option int)) "get_counter" (Some 5) (Metrics.get_counter m "runs");
  let g = Metrics.gauge m "height" in
  Metrics.set g 17.0;
  let h = Metrics.histogram m ~buckets:[| 1; 2; 4 |] "depth" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 99 ];
  Alcotest.(check int) "histogram count" 6 (Metrics.histogram_count h);
  Alcotest.(check int) "histogram sum" 109 (Metrics.histogram_sum h);
  Alcotest.(check string) "dump"
    {|{"counters":{"runs":5},"gauges":{"height":17.0},"histograms":{"depth":{"buckets":[1,2,4],"counts":[2,1,2,1],"count":6,"sum":109,"p50":2,"p95":null,"p99":null}}}|}
    (Metrics.dump m)

(* Nearest-rank over cumulative bucket counts: the reported quantile is
   the upper bound of the bucket holding the rank-th observation, [None]
   once the rank falls in the overflow bucket. *)
let test_metrics_histogram_quantile () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1; 2; 4 |] "q" in
  Alcotest.(check (option int)) "empty histogram" None (Metrics.histogram_quantile h 50);
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 99 ];
  Alcotest.(check (option int)) "p50 lands in bucket <=2" (Some 2)
    (Metrics.histogram_quantile h 50);
  Alcotest.(check (option int)) "p0 clamps to rank 1" (Some 1)
    (Metrics.histogram_quantile h 0);
  Alcotest.(check (option int)) "p100 is the overflow observation" None
    (Metrics.histogram_quantile h 100);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metrics.histogram_quantile: q must be in [0,100]") (fun () ->
      ignore (Metrics.histogram_quantile h 101))

let test_metrics_kind_mismatch () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: x already registered as a counter, not a gauge") (fun () ->
      ignore (Metrics.gauge m "x"))

let test_metrics_golden_filter () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "golden");
  Metrics.incr (Metrics.counter m ~golden:false "schedule_noise");
  let dump = Metrics.dump m in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "golden kept" true (contains dump "golden");
  Alcotest.(check bool) "non-golden excluded" false (contains dump "schedule_noise");
  Alcotest.(check bool) "non-golden in ~all dump" true
    (contains (Metrics.dump ~all:true m) "schedule_noise")

let test_metrics_merge_gauge_untouched () =
  let dst = Metrics.create () and src = Metrics.create () in
  Metrics.set (Metrics.gauge dst "g") 5.0;
  ignore (Metrics.gauge src "g");
  (* registered but never set *)
  Metrics.merge_into ~dst src;
  Alcotest.(check string) "untouched gauge does not overwrite"
    {|{"counters":{},"gauges":{"g":5.0},"histograms":{}}|} (Metrics.dump dst)

(* QCheck: the determinism contract. Any partition of the observation
   stream across child registries, merged in index order, must dump the
   bytes the single sequential registry dumps — this is exactly what makes
   --jobs N invisible in golden output. *)

let observe_all m values =
  let h = Metrics.histogram m ~buckets:[| 1; 2; 4; 8; 16 |] "h" in
  let c = Metrics.counter m "c" in
  List.iter
    (fun v ->
      Metrics.observe h v;
      Metrics.incr ~by:v c)
    values

let qcheck_partition_equivalence =
  QCheck.Test.make ~name:"metrics: partitioned merge == sequential" ~count:100
    QCheck.(pair (list (int_bound 40)) (int_range 1 6))
    (fun (values, parts) ->
      let parts = max 1 parts (* QCheck's int_range shrinker can undershoot *) in
      let reference = Metrics.create () in
      observe_all reference values;
      (* Deal values round-robin into [parts] children (an arbitrary but
         order-preserving-per-child partition, like pool work units). Every
         child registers the full instrument set, as every pool work unit
         harvests the same instruments. *)
      let children = Array.init parts (fun _ -> Metrics.create ()) in
      Array.iter (fun child -> observe_all child []) children;
      List.iteri (fun i v -> observe_all children.(i mod parts) [ v ]) values;
      let merged = Metrics.create () in
      Array.iter (fun child -> Metrics.merge_into ~dst:merged child) children;
      String.equal (Metrics.dump reference) (Metrics.dump merged))

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"metrics: histogram merge commutes" ~count:100
    QCheck.(pair (list (int_bound 40)) (list (int_bound 40)))
    (fun (xs, ys) ->
      let a = Metrics.create () and b = Metrics.create () in
      observe_all a xs;
      observe_all b ys;
      let ab = Metrics.create () and ba = Metrics.create () in
      Metrics.merge_into ~dst:ab a;
      Metrics.merge_into ~dst:ab b;
      Metrics.merge_into ~dst:ba b;
      Metrics.merge_into ~dst:ba a;
      String.equal (Metrics.dump ab) (Metrics.dump ba))

let qcheck_merge_associative =
  QCheck.Test.make ~name:"metrics: histogram merge associates" ~count:100
    QCheck.(triple (list (int_bound 40)) (list (int_bound 40)) (list (int_bound 40)))
    (fun (xs, ys, zs) ->
      let mk vs =
        let m = Metrics.create () in
        observe_all m vs;
        m
      in
      (* (a ⊕ b) ⊕ c *)
      let left = Metrics.create () in
      let ab = Metrics.create () in
      Metrics.merge_into ~dst:ab (mk xs);
      Metrics.merge_into ~dst:ab (mk ys);
      Metrics.merge_into ~dst:left ab;
      Metrics.merge_into ~dst:left (mk zs);
      (* a ⊕ (b ⊕ c) *)
      let right = Metrics.create () in
      let bc = Metrics.create () in
      Metrics.merge_into ~dst:bc (mk ys);
      Metrics.merge_into ~dst:bc (mk zs);
      Metrics.merge_into ~dst:right (mk xs);
      Metrics.merge_into ~dst:right bc;
      String.equal (Metrics.dump left) (Metrics.dump right))

(* --- Tracer ------------------------------------------------------------- *)

let test_tracer_buffer () =
  let t = Tracer.buffer () in
  Alcotest.(check bool) "enabled" true (Tracer.enabled t);
  Tracer.emit t "a" [ ("k", Json.Int 1) ];
  Tracer.emit t "b" [];
  Alcotest.(check int) "emitted" 2 (Tracer.emitted t);
  Alcotest.(check (list string)) "lines oldest-first"
    [ {|{"ev":"a","k":1}|}; {|{"ev":"b"}|} ]
    (Tracer.lines t)

let test_tracer_ring () =
  let t = Tracer.ring 2 in
  List.iter (fun n -> Tracer.emit t n []) [ "a"; "b"; "c"; "d" ];
  Alcotest.(check int) "emitted counts drops" 4 (Tracer.emitted t);
  Alcotest.(check (list string)) "ring keeps the most recent"
    [ {|{"ev":"c"}|}; {|{"ev":"d"}|} ]
    (Tracer.lines t)

let test_tracer_null () =
  Alcotest.(check bool) "null disabled" false (Tracer.enabled Tracer.null);
  Tracer.emit Tracer.null "a" [];
  Alcotest.(check int) "null ignores" 0 (Tracer.emitted Tracer.null)

(* --- Scope fork/merge ---------------------------------------------------- *)

let test_scope_fork_merge () =
  let m = Metrics.create () in
  let tracer = Tracer.buffer () in
  let parent = Scope.make ~metrics:m ~tracer () in
  Scope.incr parent "c";
  let c1 = Scope.fork parent and c2 = Scope.fork parent in
  Scope.incr ~by:2 c1 "c";
  Scope.emit c1 "one" [];
  Scope.incr ~by:5 c2 "c";
  Scope.emit c2 "two" [];
  Scope.merge_child parent ~child:c1;
  Scope.merge_child parent ~child:c2;
  Alcotest.(check (option int)) "counters fold in" (Some 8) (Metrics.get_counter m "c");
  Alcotest.(check (list string)) "child lines append in merge order"
    [ {|{"ev":"one"}|}; {|{"ev":"two"}|} ]
    (Tracer.lines tracer)

let test_scope_null () =
  Alcotest.(check bool) "null disabled" false (Scope.enabled Scope.null);
  Alcotest.(check bool) "null fork disabled" false (Scope.enabled (Scope.fork Scope.null));
  (* All no-ops, must not raise. *)
  Scope.incr Scope.null "c";
  Scope.set_gauge Scope.null "g" 1.0;
  Scope.emit Scope.null "e" []

(* --- Sim.Trace event accumulation (regression: growable buffer) ---------- *)

let small_config ?(rounds = 10) () =
  let params = Params.make ~recency_r:4 ~p:0.01 ~pf:0.05 ~kappa:4 () in
  Config.make ~protocol:Config.Fruitchain ~n:4 ~rho:0.0 ~delta:2 ~rounds ~seed:7L ~params ()

let test_trace_hundred_thousand_events () =
  let config = small_config () in
  let store = Store.create () in
  let trace = Trace.create ~config ~store () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    Trace.record_event trace
      {
        Trace.round = i;
        miner = i mod 4;
        honest = true;
        kind = (if i mod 7 = 0 then `Block else `Fruit);
        hash = Hash.zero;
      }
  done;
  Alcotest.(check int) "event_count" n (Trace.event_count trace);
  let events = Trace.events trace in
  Alcotest.(check int) "events list materializes fully" n (List.length events);
  Alcotest.(check int) "first event round" 0 (List.hd events).Trace.round;
  Alcotest.(check int) "last event round" (n - 1)
    (List.nth events (n - 1)).Trace.round;
  let seen = ref 0 and chronological = ref true in
  Trace.iter_events trace ~f:(fun e ->
      if e.Trace.round <> !seen then chronological := false;
      incr seen);
  Alcotest.(check bool) "iter_events chronological" true !chronological;
  Alcotest.(check int) "iter_events visits all" n !seen

(* --- Instrumented engine smoke ------------------------------------------ *)

let test_engine_scope_smoke () =
  let m = Metrics.create () in
  let tracer = Tracer.buffer () in
  let scope = Scope.make ~metrics:m ~tracer () in
  let rounds = 2_000 in
  let config = small_config ~rounds () in
  let trace = Engine.run ~config ~strategy:(module Delays.Null_max) ~scope () in
  Alcotest.(check (option int)) "one run" (Some 1) (Metrics.get_counter m "sim.runs");
  Alcotest.(check (option int)) "rounds harvested" (Some rounds)
    (Metrics.get_counter m "sim.rounds");
  Alcotest.(check (option int)) "queries harvested"
    (Some (Trace.oracle_queries trace))
    (Metrics.get_counter m "oracle.queries");
  Alcotest.(check (option int)) "honest block mints match the trace"
    (Some
       (List.length
          (List.filter (fun (e : Trace.event) -> e.kind = `Block) (Trace.events trace))))
    (Metrics.get_counter m "sim.mint.block.honest");
  (* Every emitted line is one complete JSON object with an "ev" name. *)
  let lines = Tracer.lines tracer in
  Alcotest.(check bool) "trace has events" true (List.length lines > 0);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "bad trace line %S: %s" line e
      | Ok j -> (
          match Option.bind (Json.member "ev" j) Json.to_str with
          | Some _ -> ()
          | None -> Alcotest.failf "trace line without ev: %S" line))
    lines;
  (* And the dump reparses as canonical JSON. *)
  match Json.of_string (Metrics.dump m) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metric dump is not valid JSON: %s" e

(* --- Report ------------------------------------------------------------- *)

let test_report_classify () =
  let kind content =
    match Report.classify content with
    | Ok (k, _) -> Report.kind_name k
    | Error e -> "error: " ^ e
  in
  Alcotest.(check string) "metrics dump" "metrics"
    (kind {|{"counters":{"a":1},"gauges":{},"histograms":{}}|});
  Alcotest.(check string) "bench json" "bench"
    (kind {|{"schema":"fruitchains-bench/1","jobs":2}|});
  Alcotest.(check string) "single trace line" "trace" (kind {|{"ev":"mint","round":3}|});
  Alcotest.(check string) "jsonl" "trace"
    (kind "{\"ev\":\"a\",\"round\":1}\n{\"ev\":\"b\",\"round\":2}\n");
  Alcotest.(check string) "garbage is an error" "error: empty file" (kind "\n\n")

let test_report_summarize () =
  let check_ok content =
    match Report.summarize content with
    | Ok s -> s
    | Error e -> Alcotest.failf "summarize failed: %s" e
  in
  let metrics =
    check_ok
      {|{"counters":{"sim.runs":2},"gauges":{"h":1.5},"histograms":{"d":{"buckets":[1],"counts":[3,1],"count":4,"sum":7}}}|}
  in
  Alcotest.(check bool) "metrics header" true (String.length metrics > 0);
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1)) in
    go 0
  in
  let trace = check_ok "{\"ev\":\"a\",\"round\":1}\n{\"ev\":\"a\",\"round\":9}\n" in
  Alcotest.(check bool) "trace mentions span" true (contains trace "1..9")

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "canonical" `Quick test_json_canonical;
          Alcotest.test_case "floats" `Quick test_json_floats;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "100k pushes" `Quick test_vec_large;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "instruments" `Quick test_metrics_instruments;
          Alcotest.test_case "histogram quantile" `Quick test_metrics_histogram_quantile;
          Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
          Alcotest.test_case "golden filter" `Quick test_metrics_golden_filter;
          Alcotest.test_case "gauge merge" `Quick test_metrics_merge_gauge_untouched;
        ] );
      ( "metrics determinism (qcheck)",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_partition_equivalence; qcheck_merge_commutative; qcheck_merge_associative;
          ] );
      ( "tracer",
        [
          Alcotest.test_case "buffer" `Quick test_tracer_buffer;
          Alcotest.test_case "ring" `Quick test_tracer_ring;
          Alcotest.test_case "null" `Quick test_tracer_null;
        ] );
      ( "scope",
        [
          Alcotest.test_case "fork/merge" `Quick test_scope_fork_merge;
          Alcotest.test_case "null" `Quick test_scope_null;
        ] );
      ( "trace buffer",
        [ Alcotest.test_case "10^5 events" `Quick test_trace_hundred_thousand_events ] );
      ( "engine",
        [ Alcotest.test_case "instrumented smoke" `Quick test_engine_scope_smoke ] );
      ( "report",
        [
          Alcotest.test_case "classify" `Quick test_report_classify;
          Alcotest.test_case "summarize" `Quick test_report_summarize;
        ] );
    ]
