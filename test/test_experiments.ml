(* Tests for Fruitchain_experiments: the registry, and quick-scale runs of
   every experiment asserting that each produces a well-formed outcome and —
   for the cheap ones — that the paper-shape assertions hold. *)

module Exp = Fruitchain_experiments.Exp
module Registry = Fruitchain_experiments.Registry
module Table = Fruitchain_util.Table

let test_registry_complete () =
  Alcotest.(check int) "twenty-two experiments" 22 (List.length Registry.all);
  let ids = List.map fst (Registry.ids ()) in
  List.iteri
    (fun i id ->
      Alcotest.(check string) "sequential ids" (Printf.sprintf "E%02d" (i + 1)) id)
    ids

let test_registry_find () =
  (match Registry.find "e07" with
  | Some (module E) -> Alcotest.(check string) "case-insensitive" "E07" E.id
  | None -> Alcotest.fail "lookup failed");
  Alcotest.(check bool) "unknown" true (Registry.find "E99" = None)

let outcome_nonempty (o : Exp.outcome) =
  let rendered = Table.to_string o.table in
  Alcotest.(check bool) (o.id ^ " table renders") true (String.length rendered > 40);
  Alcotest.(check bool) (o.id ^ " has claim") true (String.length o.claim > 10)

(* Cheap experiments run in full inside the suite. *)
let test_run_quick id =
  match Registry.find id with
  | None -> Alcotest.failf "missing %s" id
  | Some (module E) -> outcome_nonempty (E.run ~scale:Exp.Quick ())

let test_e08_shape () =
  match Registry.find "E08" with
  | None -> Alcotest.fail "missing"
  | Some (module E) ->
      let o = E.run ~scale:Exp.Quick () in
      outcome_nonempty o;
      (* The reference-only representation of 1000 fruits must be in the
         low single-digit percent of 1MB. *)
      let rendered = Table.to_string o.table in
      Alcotest.(check bool) "mentions 1000 fruits" true
        (let contains h n =
           let hn = String.length h and nn = String.length n in
           let rec scan i = i + nn <= hn && (String.sub h i nn = n || scan (i + 1)) in
           scan 0
         in
         contains rendered "1000")

let test_e12_shape () =
  match Registry.find "E12" with
  | None -> Alcotest.fail "missing"
  | Some (module E) ->
      let o = E.run ~scale:Exp.Quick () in
      outcome_nonempty o

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
        ] );
      ( "quick-runs",
        [
          Alcotest.test_case "E01 selfish nakamoto" `Slow (fun () -> test_run_quick "E01");
          Alcotest.test_case "E02 selfish fruitchain" `Slow (fun () -> test_run_quick "E02");
          Alcotest.test_case "E03 fairness windows" `Slow (fun () -> test_run_quick "E03");
          Alcotest.test_case "E04 chain growth" `Slow (fun () -> test_run_quick "E04");
          Alcotest.test_case "E05 consistency" `Slow (fun () -> test_run_quick "E05");
          Alcotest.test_case "E06 liveness" `Slow (fun () -> test_run_quick "E06");
          Alcotest.test_case "E07 reward variance" `Slow (fun () -> test_run_quick "E07");
          Alcotest.test_case "E08 block overhead" `Quick test_e08_shape;
          Alcotest.test_case "E09 withholding" `Slow (fun () -> test_run_quick "E09");
          Alcotest.test_case "E10 incentives" `Slow (fun () -> test_run_quick "E10");
          Alcotest.test_case "E11 committee" `Slow (fun () -> test_run_quick "E11");
          Alcotest.test_case "E12 two-for-one" `Quick test_e12_shape;
          Alcotest.test_case "E13 hybrid bft" `Slow (fun () -> test_run_quick "E13");
          Alcotest.test_case "E14 pools" `Slow (fun () -> test_run_quick "E14");
          Alcotest.test_case "E15 retargeting" `Slow (fun () -> test_run_quick "E15");
          Alcotest.test_case "E16 stubborn" `Slow (fun () -> test_run_quick "E16");
          Alcotest.test_case "E17 recency sweep" `Slow (fun () -> test_run_quick "E17");
          Alcotest.test_case "E18 topology delta" `Slow (fun () -> test_run_quick "E18");
          Alcotest.test_case "E19 partition consistency" `Slow (fun () ->
              test_run_quick "E19");
          Alcotest.test_case "E20 delay-spike fairness" `Slow (fun () ->
              test_run_quick "E20");
          Alcotest.test_case "E21 churn quality" `Slow (fun () -> test_run_quick "E21");
        ] );
    ]
