(* Tests for Fruitchain_metrics on hand-built chains and traces with known
   ground truth. *)

module Quality = Fruitchain_metrics.Quality
module Fairness = Fruitchain_metrics.Fairness
module Consistency = Fruitchain_metrics.Consistency
module Growth = Fruitchain_metrics.Growth
module Liveness = Fruitchain_metrics.Liveness
module Rewards = Fruitchain_metrics.Rewards
module Config = Fruitchain_sim.Config
module Trace = Fruitchain_sim.Trace
module Engine = Fruitchain_sim.Engine
module Params = Fruitchain_core.Params
module Types = Fruitchain_chain.Types
module Store = Fruitchain_chain.Store
module Codec = Fruitchain_chain.Codec
module Validate = Fruitchain_chain.Validate
module Oracle = Fruitchain_crypto.Oracle
module Rng = Fruitchain_util.Rng
module Delays = Fruitchain_adversary.Delays

(* --- Hand-built chain helpers ------------------------------------------ *)

let easy = Oracle.real ~p:1.0 ~pf:1.0
let rng = Rng.of_seed 1L

let prov ~miner ~round ~honest = Some { Types.miner; round; honest }

let mk_fruit ~miner ~round ~honest ~record =
  let rec go () =
    let header =
      {
        Types.parent = Types.genesis_hash;
        pointer = Types.genesis_hash;
        nonce = Rng.bits64 rng;
        digest = Fruitchain_crypto.Merkle.empty_root;
        record;
      }
    in
    let hash = Oracle.query easy (Codec.header_bytes header) in
    if Oracle.mined_fruit easy hash then
      { Types.f_header = header; f_hash = hash; f_prov = prov ~miner ~round ~honest }
    else go ()
  in
  go ()

let mk_block ~parent ~miner ~round ~honest ?(record = "") fruits =
  let digest = Validate.fruit_set_digest fruits in
  let rec go () =
    let header =
      { Types.parent; pointer = parent; nonce = Rng.bits64 rng; digest; record }
    in
    let hash = Oracle.query easy (Codec.header_bytes header) in
    if Oracle.mined_block easy hash then
      { Types.b_header = header; b_hash = hash; fruits; b_prov = prov ~miner ~round ~honest }
    else go ()
  in
  go ()

(* --- Quality ------------------------------------------------------------ *)

let test_shares_counting () =
  let b1 = mk_block ~parent:Types.genesis_hash ~miner:0 ~round:1 ~honest:true [] in
  let b2 = mk_block ~parent:b1.Types.b_hash ~miner:9 ~round:2 ~honest:false [] in
  let b3 = mk_block ~parent:b2.Types.b_hash ~miner:1 ~round:3 ~honest:true [] in
  let s = Quality.block_shares [ Types.genesis; b1; b2; b3 ] in
  Alcotest.(check int) "honest" 2 s.Quality.honest;
  Alcotest.(check int) "adversarial" 1 s.Quality.adversarial;
  Alcotest.(check (float 1e-9)) "fraction" (1.0 /. 3.0) (Quality.adversarial_fraction s)

let test_shares_empty () =
  let s = Quality.block_shares [ Types.genesis ] in
  Alcotest.(check int) "genesis skipped" 0 (Quality.total s);
  Alcotest.(check bool) "nan fraction" true (Float.is_nan (Quality.adversarial_fraction s))

let test_worst_window () =
  (* honest pattern: T T F F T T T T *)
  let flags = [| true; true; false; false; true; true; true; true |] in
  Alcotest.(check (float 1e-9)) "worst honest over 4" 0.5
    (Quality.worst_window_fraction flags ~window:4 `Honest);
  Alcotest.(check (float 1e-9)) "worst adversarial over 4" 0.5
    (Quality.worst_window_fraction flags ~window:4 `Adversarial);
  Alcotest.(check (float 1e-9)) "window 2 all-adversarial exists" 1.0
    (Quality.worst_window_fraction flags ~window:2 `Adversarial);
  Alcotest.(check bool) "window too large is nan" true
    (Float.is_nan (Quality.worst_window_fraction flags ~window:9 `Honest))

let test_worst_window_invalid () =
  Alcotest.check_raises "window=0"
    (Invalid_argument "Quality.worst_window_fraction: window must be positive") (fun () ->
      ignore (Quality.worst_window_fraction [| true |] ~window:0 `Honest))

(* --- Fairness ------------------------------------------------------------ *)

let test_min_window_share () =
  let flags = [| true; false; false; true; true; true |] in
  Alcotest.(check (float 1e-9)) "min over 3" (1.0 /. 3.0)
    (Fairness.min_window_share flags ~window:3)

let test_subset_flags () =
  let f0 = mk_fruit ~miner:0 ~round:1 ~honest:true ~record:"a" in
  let f1 = mk_fruit ~miner:1 ~round:2 ~honest:true ~record:"b" in
  let f2 = mk_fruit ~miner:2 ~round:3 ~honest:true ~record:"c" in
  let flags = Fairness.subset_flags_of_fruits [ f0; f1; f2 ] ~member:(fun m -> m <= 1) in
  Alcotest.(check (array bool)) "membership" [| true; true; false |] flags

(* A tiny real run for the trace-level fairness APIs. *)
let small_trace ?(rho = 0.25) ?(probe_interval = 0) () =
  let params = Params.make ~recency_r:4 ~p:0.01 ~pf:0.05 ~kappa:4 () in
  let config =
    Config.make ~protocol:Config.Fruitchain ~n:8 ~rho ~delta:2 ~rounds:3_000 ~seed:5L
      ~probe_interval ~params ()
  in
  Engine.run ~config ~strategy:(module Delays.Null_max) ()

let test_fruit_fairness_full_honest_set () =
  let trace = small_trace ~rho:0.0 () in
  let subset = Trace.honest_parties trace in
  let r = Fairness.fruit_fairness trace ~subset ~window:100 in
  Alcotest.(check (float 1e-9)) "phi=1" 1.0 r.Fairness.phi;
  Alcotest.(check (float 1e-9)) "everyone: share 1" 1.0 r.Fairness.overall_share;
  Alcotest.(check (float 1e-9)) "min share 1" 1.0 r.Fairness.min_share;
  Alcotest.(check (float 1e-9)) "floor" 0.8 (r.Fairness.fair_floor 0.2)

let test_fairness_rejects_corrupt_subset () =
  let trace = small_trace ~rho:0.25 () in
  Alcotest.check_raises "corrupt member"
    (Invalid_argument "Fairness: subset members must be honest parties") (fun () ->
      ignore (Fairness.fruit_fairness trace ~subset:[ 7 ] ~window:10))

(* --- Consistency (hand-built trace) -------------------------------------- *)

let test_consistency_divergence () =
  let params = Params.make ~recency_r:4 ~p:0.01 ~pf:0.05 ~kappa:4 () in
  let config =
    Config.make ~protocol:Config.Fruitchain ~n:2 ~rho:0.0 ~delta:2 ~rounds:10 ~seed:1L ~params ()
  in
  let store = Store.create () in
  let trace = Trace.create ~config ~store () in
  (* Trunk of 3 blocks; a fork of length 2 off block 1. *)
  let b1 = mk_block ~parent:Types.genesis_hash ~miner:0 ~round:1 ~honest:true [] in
  let b2 = mk_block ~parent:b1.Types.b_hash ~miner:0 ~round:2 ~honest:true [] in
  let b3 = mk_block ~parent:b2.Types.b_hash ~miner:0 ~round:3 ~honest:true [] in
  let c2 = mk_block ~parent:b1.Types.b_hash ~miner:1 ~round:2 ~honest:true [] in
  let c3 = mk_block ~parent:c2.Types.b_hash ~miner:1 ~round:3 ~honest:true [] in
  List.iter (Store.add store) [ b1; b2; b3; c2; c3 ];
  (* Snapshot: party 0 on b3 (h=3), party 1 on c3 (h=3); common height 1 →
     divergence 2. Final: both on b3 → party 1 rolled back 2. *)
  Trace.record_heads trace ~round:5 [| b3.Types.b_hash; c3.Types.b_hash |];
  Trace.set_final_heads trace [| b3.Types.b_hash; b3.Types.b_hash |];
  let r = Consistency.measure trace in
  Alcotest.(check int) "pairwise divergence" 2 r.Consistency.max_pairwise_divergence;
  Alcotest.(check int) "future rollback" 2 r.Consistency.max_future_rollback;
  Alcotest.(check (pair int int)) "violations at t0=1" (1, 1) (Consistency.violations r ~t0:1);
  Alcotest.(check (pair int int)) "no violations at t0=2" (0, 0) (Consistency.violations r ~t0:2)

let test_consistency_agreement_is_zero () =
  let trace = small_trace ~rho:0.0 () in
  let r = Consistency.measure trace in
  Alcotest.(check bool) "tiny divergence in benign run" true
    (r.Consistency.max_pairwise_divergence <= 2)

(* --- Growth ---------------------------------------------------------------- *)

let test_growth_rates () =
  let trace = small_trace ~rho:0.0 () in
  let g = Growth.measure trace ~span_rounds:500 in
  (* n*p = 0.08; delivery delays discount the effective rate. *)
  Alcotest.(check bool) "mean in plausible band" true
    (g.Growth.mean_rate > 0.02 && g.Growth.mean_rate < 0.09);
  Alcotest.(check bool) "min <= mean <= max" true
    (g.Growth.min_window_rate <= g.Growth.mean_rate +. 1e-9
    && g.Growth.mean_rate <= g.Growth.max_window_rate +. 1e-9)

let test_fruit_ledger_rate () =
  let trace = small_trace ~rho:0.0 () in
  let rate = Growth.fruit_ledger_rate trace in
  (* n*pf = 0.4 *)
  Alcotest.(check bool) "near n*pf" true (Float.abs (rate -. 0.4) < 0.08)

(* --- Liveness ---------------------------------------------------------------- *)

let test_liveness_confirms_probes () =
  let trace = small_trace ~rho:0.0 ~probe_interval:600 () in
  let r = Liveness.measure trace ~kappa:4 in
  Alcotest.(check bool) "most probes confirm" true (r.Liveness.confirmed >= 4);
  Alcotest.(check bool) "waits positive" true
    (Array.for_all (fun w -> w >= 0.0) r.Liveness.waits);
  Alcotest.(check bool) "mean <= max" true
    (Liveness.mean_wait r <= Liveness.max_wait r +. 1e-9)

let test_liveness_empty () =
  let trace = small_trace ~rho:0.0 () in
  let r = Liveness.measure trace ~kappa:4 in
  Alcotest.(check int) "no probes configured" 0 (r.Liveness.confirmed + r.Liveness.unconfirmed)

(* --- Rewards ---------------------------------------------------------------- *)

let test_reward_rounds_sorted_and_filtered () =
  let trace = small_trace ~rho:0.0 () in
  let rounds_list = Rewards.reward_rounds trace ~miner:0 in
  Alcotest.(check bool) "sorted" true (List.sort compare rounds_list = rounds_list);
  Alcotest.(check bool) "non-empty" true (rounds_list <> []);
  (* Sum over miners = total ledger fruits. *)
  let total =
    List.fold_left
      (fun acc m -> acc + List.length (Rewards.reward_rounds trace ~miner:m))
      0
      (List.init 8 Fun.id)
  in
  let fruits =
    List.length (Fruitchain_core.Extract.fruits_of_chain (Trace.honest_final_chain trace))
  in
  Alcotest.(check int) "partition of the ledger" fruits total

let test_reward_summary () =
  let trace = small_trace ~rho:0.0 () in
  let s = Rewards.summarize trace ~miner:0 ~slices:10 in
  Alcotest.(check bool) "rewards counted" true (s.Rewards.rewards > 10);
  Alcotest.(check bool) "first reward round recorded" true (s.Rewards.time_to_first >= 0.0);
  Alcotest.(check bool) "mean interval positive" true (s.Rewards.mean_interval > 0.0);
  Alcotest.(check bool) "income cv finite" true (Float.is_finite s.Rewards.income_cv)

let test_reward_summary_unknown_miner () =
  let trace = small_trace ~rho:0.0 () in
  let s = Rewards.summarize trace ~miner:77 ~slices:10 in
  Alcotest.(check int) "no rewards" 0 s.Rewards.rewards;
  Alcotest.(check bool) "nan first" true (Float.is_nan s.Rewards.time_to_first)

let () =
  Alcotest.run "metrics"
    [
      ( "quality",
        [
          Alcotest.test_case "share counting" `Quick test_shares_counting;
          Alcotest.test_case "empty shares" `Quick test_shares_empty;
          Alcotest.test_case "worst window" `Quick test_worst_window;
          Alcotest.test_case "worst window invalid" `Quick test_worst_window_invalid;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "min window share" `Quick test_min_window_share;
          Alcotest.test_case "subset flags" `Quick test_subset_flags;
          Alcotest.test_case "full honest set" `Quick test_fruit_fairness_full_honest_set;
          Alcotest.test_case "rejects corrupt subset" `Quick test_fairness_rejects_corrupt_subset;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "divergence on crafted fork" `Quick test_consistency_divergence;
          Alcotest.test_case "benign agreement" `Quick test_consistency_agreement_is_zero;
        ] );
      ( "growth",
        [
          Alcotest.test_case "rates" `Quick test_growth_rates;
          Alcotest.test_case "fruit ledger rate" `Quick test_fruit_ledger_rate;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "confirms probes" `Quick test_liveness_confirms_probes;
          Alcotest.test_case "no probes" `Quick test_liveness_empty;
        ] );
      ( "rewards",
        [
          Alcotest.test_case "rounds sorted, partition" `Quick
            test_reward_rounds_sorted_and_filtered;
          Alcotest.test_case "summary" `Quick test_reward_summary;
          Alcotest.test_case "unknown miner" `Quick test_reward_summary_unknown_miner;
        ] );
    ]
