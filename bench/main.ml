(* The benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one per reproduction experiment
   (timing the kernel each table is built from, at reduced scale) plus the
   substrate hot paths (SHA-256, Merkle, oracle query, codec, validation).

   Part 2 — the reproduction itself: every experiment E01–E17 at full
   scale, printing the tables and figures recorded in EXPERIMENTS.md.

   Run with: dune exec bench/main.exe            (full, ~5 minutes at 1 job)
            dune exec bench/main.exe -- --quick  (reduced scale)
            dune exec bench/main.exe -- --micro-only | --tables-only
            dune exec bench/main.exe -- --jobs N (worker domains for the
            experiment sweeps; default: available cores, 1 = sequential)
            dune exec bench/main.exe -- --json PATH    (machine-readable
            BENCH.json telemetry: schema fruitchains-bench/1)
            dune exec bench/main.exe -- --trace PATH   (JSONL event trace
            of the reproduction runs)
            dune exec bench/main.exe -- --metrics PATH (deterministic
            metric dump of the reproduction runs) *)

open Bechamel
open Toolkit
module Exp = Fruitchain_experiments.Exp
module Registry = Fruitchain_experiments.Registry
module Runs = Fruitchain_experiments.Runs
module Config = Fruitchain_sim.Config
module Engine = Fruitchain_sim.Engine
module Trace = Fruitchain_sim.Trace
module Params = Fruitchain_core.Params
module Oracle = Fruitchain_crypto.Oracle
module Sha256 = Fruitchain_crypto.Sha256
module Merkle = Fruitchain_crypto.Merkle
module Codec = Fruitchain_chain.Codec
module Types = Fruitchain_chain.Types
module Rng = Fruitchain_util.Rng
module Pool = Fruitchain_util.Pool
module Clock = Fruitchain_obs.Clock
module Metrics = Fruitchain_obs.Metrics
module Tracer = Fruitchain_obs.Tracer
module Scope = Fruitchain_obs.Scope
module Json = Fruitchain_obs.Json

(* --- Part 1: micro-benchmarks ------------------------------------------ *)

let sample_block =
  let oracle = Oracle.real ~p:1.0 ~pf:1.0 in
  let rng = Rng.of_seed 1L in
  let fruit record =
    let header =
      {
        Types.parent = Types.genesis_hash;
        pointer = Types.genesis_hash;
        nonce = Rng.bits64 rng;
        digest = Merkle.empty_root;
        record;
      }
    in
    {
      Types.f_header = header;
      f_hash = Oracle.query oracle (Codec.header_bytes header);
      f_prov = None;
    }
  in
  let fruits = List.init 100 (fun i -> fruit (Printf.sprintf "tx-%04d" i)) in
  let header =
    {
      Types.parent = Types.genesis_hash;
      pointer = Types.genesis_hash;
      nonce = 7L;
      digest = Fruitchain_chain.Validate.fruit_set_digest fruits;
      record = "";
    }
  in
  {
    Types.b_header = header;
    b_hash = Oracle.query oracle (Codec.header_bytes header);
    fruits;
    b_prov = None;
  }

let substrate_tests =
  let payload = String.make 256 'x' in
  let leaves = List.init 100 (fun i -> Printf.sprintf "leaf-%d" i) in
  let sim_oracle = Oracle.sim ~p:0.01 ~pf:0.1 (Rng.of_seed 2L) in
  let real_oracle = Oracle.real ~p:1.0 ~pf:1.0 in
  let block_bytes = Codec.block_bytes sample_block in
  [
    Test.make ~name:"sha256/256B" (Staged.stage (fun () -> Sha256.digest payload));
    Test.make ~name:"merkle/root-100" (Staged.stage (fun () -> Merkle.root leaves));
    Test.make ~name:"oracle/sim-query" (Staged.stage (fun () -> Oracle.query sim_oracle ""));
    Test.make ~name:"codec/block-100-fruits"
      (Staged.stage (fun () -> Codec.block_bytes sample_block));
    Test.make ~name:"codec/decode-block"
      (Staged.stage (fun () -> Codec.block_of_bytes block_bytes));
    Test.make ~name:"validate/block-100-fruits"
      (Staged.stage (fun () -> Fruitchain_chain.Validate.valid_block real_oracle sample_block));
  ]

(* One micro-benchmark per experiment: time a miniature version of the
   simulation kernel behind each table. *)
let experiment_kernel ~protocol ~rho ~strategy rounds () =
  let params = Params.make ~recency_r:4 ~p:0.01 ~pf:0.1 ~kappa:4 () in
  let config = Config.make ~protocol ~n:8 ~rho ~delta:2 ~rounds ~seed:9L ~params () in
  ignore (Engine.run ~config ~strategy ())

let experiment_tests =
  [
    Test.make ~name:"E01/nakamoto-selfish"
      (Staged.stage
         (experiment_kernel ~protocol:Config.Nakamoto ~rho:0.3
            ~strategy:(Runs.selfish ~gamma:0.5) 500));
    Test.make ~name:"E02/fruitchain-selfish"
      (Staged.stage
         (experiment_kernel ~protocol:Config.Fruitchain ~rho:0.3
            ~strategy:(Runs.selfish ~gamma:0.5) 500));
    Test.make ~name:"E03/fairness-run"
      (Staged.stage
         (experiment_kernel ~protocol:Config.Fruitchain ~rho:0.25
            ~strategy:(Runs.selfish ~gamma:0.5) 500));
    Test.make ~name:"E04/growth-run"
      (Staged.stage
         (experiment_kernel ~protocol:Config.Fruitchain ~rho:0.0 ~strategy:Runs.null_delay 500));
    Test.make ~name:"E05/consistency-run"
      (Staged.stage
         (experiment_kernel ~protocol:Config.Fruitchain ~rho:0.4
            ~strategy:(Runs.selfish ~gamma:0.5) 500));
    Test.make ~name:"E06/liveness-run"
      (Staged.stage
         (experiment_kernel ~protocol:Config.Fruitchain ~rho:0.25
            ~strategy:(Runs.selfish ~gamma:0.5) 500));
    Test.make ~name:"E07/high-q-run"
      (Staged.stage (fun () ->
           let params = Params.make ~recency_r:4 ~p:0.002 ~pf:0.2 ~kappa:4 () in
           let config =
             Config.make ~protocol:Config.Fruitchain ~n:4 ~rho:0.0 ~delta:2 ~rounds:500
               ~seed:9L ~params ()
           in
           ignore (Engine.run ~config ~strategy:Runs.null_delay ())));
    Test.make ~name:"E08/wire-size" (Staged.stage (fun () -> Codec.block_wire_size sample_block));
    Test.make ~name:"E09/withhold-run"
      (Staged.stage
         (experiment_kernel ~protocol:Config.Fruitchain ~rho:0.3
            ~strategy:(Runs.withholder ~release_interval:200) 500));
    Test.make ~name:"E10/fee-run"
      (Staged.stage
         (experiment_kernel ~protocol:Config.Nakamoto ~rho:0.3
            ~strategy:(Runs.fee_sniper ~threshold:10.0) 500));
    Test.make ~name:"E11/committee-run"
      (Staged.stage
         (experiment_kernel ~protocol:Config.Nakamoto ~rho:0.3
            ~strategy:(Runs.selfish ~gamma:1.0) 500));
    Test.make ~name:"E12/oracle-stats"
      (Staged.stage (fun () ->
           let o = Oracle.sim ~p:0.01 ~pf:0.1 (Rng.of_seed 3L) in
           for _ = 1 to 1000 do
             ignore (Oracle.query o "")
           done));
    Test.make ~name:"E13/bft-committee"
      (Staged.stage (fun () ->
           let seats = List.init 99 (fun i -> i mod 3 <> 0) in
           let committee =
             Fruitchain_hybrid.Committee.of_provenances
               (List.map
                  (fun honest -> { Types.miner = 0; round = 0; honest })
                  seats)
               ~elected_at:0
           in
           ignore
             (Fruitchain_hybrid.Bft.run_slots ~rng:(Rng.of_seed 4L) ~committee ~slots:33)));
    Test.make ~name:"E14/pool-round"
      (Staged.stage (fun () ->
           ignore
             (Fruitchain_pool.Pool.simulate ~rng:(Rng.of_seed 5L)
                ~scheme:(Fruitchain_pool.Pool.Proportional { fee = 0.02 })
                ~member_power:(Array.make 10 0.1) ~p_block:1e-3 ~share_ratio:100.0
                ~rounds:2_000 ~block_reward:1.0 ~slices:10)));
    Test.make ~name:"E15/retarget-run"
      (Staged.stage (fun () ->
           ignore
             (Fruitchain_difficulty.Retarget.simulate ~rng:(Rng.of_seed 6L)
                ~params:(Fruitchain_difficulty.Retarget.make_params ~target_interval:25.0 ())
                ~initial_p:0.04
                ~power:(Fruitchain_difficulty.Retarget.constant 1.0)
                ~rounds:5_000)));
    Test.make ~name:"E16/stubborn-run"
      (Staged.stage
         (experiment_kernel ~protocol:Config.Nakamoto ~rho:0.35
            ~strategy:(Runs.stubborn ~gamma:0.9 ~lead:true ~fork:true) 500));
    Test.make ~name:"E17/recency-run"
      (Staged.stage (fun () ->
           let params = Params.make ~recency_r:2 ~p:0.01 ~pf:0.1 ~kappa:4 () in
           let config =
             Config.make ~protocol:Config.Fruitchain ~n:8 ~rho:0.3 ~delta:2 ~rounds:500
               ~seed:9L ~params ()
           in
           ignore
             (Engine.run ~config ~strategy:(Runs.withholder ~release_interval:200) ())));
    Test.make ~name:"E18/topology-flood"
      (Staged.stage (fun () ->
           let topo = Fruitchain_net.Topology.ring 200 ~k:2 in
           ignore (Fruitchain_net.Topology.flood topo ~source:0 ~per_hop_rounds:1)));
  ]

let pretty_ns estimate =
  if Float.is_nan estimate then "n/a"
  else if estimate > 1e9 then Printf.sprintf "%8.2f s " (estimate /. 1e9)
  else if estimate > 1e6 then Printf.sprintf "%8.2f ms" (estimate /. 1e6)
  else if estimate > 1e3 then Printf.sprintf "%8.2f us" (estimate /. 1e3)
  else Printf.sprintf "%8.0f ns" estimate

let run_micro () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  Printf.printf "== micro-benchmarks (monotonic clock, OLS time per run) ==\n\n";
  Printf.printf "%-28s %14s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> est
            | Some _ | None -> nan
          in
          Printf.printf "%-28s %14s\n%!" name (pretty_ns estimate))
        analyzed)
    (substrate_tests @ experiment_tests);
  Printf.printf "\n"

(* --- Part 2: the reproduction tables ------------------------------------ *)

(* The throughput figure of BENCH.json: instrumented simulator events the
   reproduction performed (oracle queries dominate; deliveries, mints and
   probes ride along). A pure function of the golden counters, so it is
   identical at every worker count — only events_per_sec varies. *)
let events_total m =
  List.fold_left
    (fun acc name -> acc + Option.value ~default:0 (Metrics.get_counter m name))
    0
    [
      "oracle.queries";
      "net.delivered";
      "sim.mint.fruit.honest";
      "sim.mint.fruit.adversary";
      "sim.mint.block.honest";
      "sim.mint.block.adversary";
      "sim.probes";
    ]

(* Wall-clock and cpu time via the blessed clock home (Obs.Clock): reporting
   and telemetry only, never fed into the simulation. Returns per-experiment
   timings (with the event-counter delta each experiment contributed, so
   BENCH.json can gate per-experiment throughput) plus the total. *)
let run_tables ~registry scale =
  Printf.printf "== reproduction: every table and figure (scale: %s, jobs: %d) ==\n\n"
    (match scale with Exp.Full -> "full" | Exp.Quick -> "quick")
    (Pool.default_jobs ());
  let t_all = Clock.now_s () in
  let timings =
    List.map
      (fun (module E : Exp.EXPERIMENT) ->
        let e0 = events_total registry in
        let c0 = Clock.cpu_s () in
        let t0 = Clock.now_s () in
        let outcome = E.run ~scale () in
        Exp.print Format.std_formatter outcome;
        let wall = Clock.now_s () -. t0 and cpu = Clock.cpu_s () -. c0 in
        let events = events_total registry - e0 in
        Printf.printf "(%s took %.1fs wall, %.1fs cpu)\n\n%!" E.id wall cpu;
        (E.id, wall, cpu, events))
      Registry.all
  in
  let total = Clock.now_s () -. t_all in
  Printf.printf "(all tables took %.1fs wall at %d jobs)\n%!" total (Pool.default_jobs ());
  (timings, total)

(* --- Engine headline ---------------------------------------------------- *)

(* Effective simulated oracle attempts per wall second on each plane. The
   exact engine's per-query cost is configuration-independent, so it is
   timed at a size it can finish quickly; the sparse plane is timed at an
   E22-style population (n = 10⁴, n·p fixed) where its aggregate sampling
   pays off. The ratio is the speedup headline carried in BENCH.json
   ("engines") and guarded by tools/bench_check. *)
let engine_headline () =
  let time config =
    let t0 = Clock.now_s () in
    let trace = Engine.run ~config ~strategy:Runs.honest_coalition () in
    let wall = Clock.now_s () -. t0 in
    float_of_int (Trace.oracle_queries trace) /. Float.max 1e-9 wall
  in
  let exact =
    let params = Params.make ~recency_r:4 ~p:0.002 ~pf:0.02 ~kappa:4 () in
    time
      (Config.make ~protocol:Config.Fruitchain ~engine:Config.Exact ~n:200 ~rho:0.25
         ~delta:2 ~rounds:5_000 ~seed:9L ~params ())
  in
  let sparse =
    let n = 10_000 and rounds = 50_000 in
    let p = 0.01 /. float_of_int n in
    let params = Params.make ~recency_r:4 ~p ~pf:(50.0 *. p) ~kappa:4 () in
    time
      (Config.make ~protocol:Config.Fruitchain ~engine:Config.Sparse ~n ~rho:0.25 ~delta:2
         ~rounds ~seed:9L ~snapshot_interval:rounds ~head_snapshot_interval:rounds ~params ())
  in
  Printf.printf "== engine headline (effective oracle attempts per second) ==\n\n";
  Printf.printf "exact  (n=200, 5k rounds):    %12.0f events/s\n" exact;
  Printf.printf "sparse (n=10k, 50k rounds):   %12.0f events/s  (%.0fx)\n\n%!" sparse
    (sparse /. exact);
  (exact, sparse)

let bench_json ~scale ~jobs ~timings ~total ~engines ~registry ~tracer =
  let exact_rate, sparse_rate = engines in
  Json.Obj
    [
      ("schema", Json.Str "fruitchains-bench/1");
      ("scale", Json.Str (match scale with Exp.Full -> "full" | Exp.Quick -> "quick"));
      ("jobs", Json.Int jobs);
      ("total_wall_s", Json.Float total);
      ( "experiments",
        Json.List
          (List.map
             (fun (id, wall, cpu, events) ->
               Json.Obj
                 [
                   ("id", Json.Str id);
                   ("wall_s", Json.Float wall);
                   ("cpu_s", Json.Float cpu);
                   ("events", Json.Int events);
                   ( "events_per_sec",
                     Json.Float
                       (if wall > 0.0 then float_of_int events /. wall else 0.0) );
                 ])
             timings) );
      ("events", Json.Int (events_total registry));
      ( "events_per_sec",
        Json.Float (if total > 0.0 then float_of_int (events_total registry) /. total else 0.0)
      );
      ( "engines",
        Json.Obj
          [
            ("exact_events_per_sec", Json.Float exact_rate);
            ("sparse_events_per_sec", Json.Float sparse_rate);
            ("speedup", Json.Float (sparse_rate /. Float.max 1e-9 exact_rate));
          ] );
      ( "trace",
        Json.Obj
          [
            ("enabled", Json.Bool (match tracer with Some _ -> true | None -> false));
            ( "lines",
              Json.Int (match tracer with Some t -> Tracer.emitted t | None -> 0) );
          ] );
      ("metrics", Metrics.to_json registry);
    ]

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let micro_only = List.mem "--micro-only" args in
  let tables_only = List.mem "--tables-only" args in
  (* --jobs N: worker domains for parallel experiment units; defaults to the
     available cores, --jobs 1 restores the fully sequential path. *)
  let rec parse_jobs = function
    | "--jobs" :: n :: _ -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> Pool.set_default_jobs n
        | Some _ | None ->
            prerr_endline "bench: --jobs expects a positive integer";
            exit 2)
    | _ :: rest -> parse_jobs rest
    | [] -> ()
  in
  parse_jobs args;
  let path_opt flag =
    let rec go = function
      | f :: p :: _ when f = flag -> Some p
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let json_path = path_opt "--json" in
  let trace_path = path_opt "--trace" in
  let metrics_path = path_opt "--metrics" in
  let scale = if quick then Exp.Quick else Exp.Full in
  if not tables_only then run_micro ();
  if not micro_only then begin
    (* The reproduction runs under a fruitscope scope so BENCH.json can
       carry a metric snapshot. Installed around the tables only — the
       micro-benchmarks repeat their kernels thousands of times and would
       drown the reproduction's counts. *)
    let registry = Metrics.create () in
    let tracer = Option.map Tracer.to_file trace_path in
    Pool.set_scope (Scope.make ~metrics:registry ?tracer ());
    let timings, total = run_tables ~registry scale in
    Pool.set_scope Scope.null;
    let engines = engine_headline () in
    Option.iter Tracer.close tracer;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Metrics.dump registry);
        output_char oc '\n';
        close_out oc;
        Printf.printf "metrics written to %s\n%!" path)
      metrics_path;
    Option.iter
      (fun path ->
        let jobs = Pool.default_jobs () in
        let doc = bench_json ~scale ~jobs ~timings ~total ~engines ~registry ~tracer in
        let oc = open_out path in
        output_string oc (Json.to_string doc);
        output_char oc '\n';
        close_out oc;
        Printf.printf "bench telemetry written to %s\n%!" path)
      json_path
  end
